package engine

import (
	"math/bits"

	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
)

// JoinRow is one equi-join match: positions into the left and right
// tables plus the join key.
type JoinRow struct {
	Left  int32
	Right int32
	Key   int64
}

// JoinResult is the output of HashJoin.
type JoinResult struct {
	Rows []JoinRow
}

// Count returns the number of joined pairs.
func (r *JoinResult) Count() int { return len(r.Rows) }

// HashJoin computes the equi-join left.leftCol = right.rightCol over
// tuples visible under mode, completing the SELECT-PROJECT-JOIN subspace
// of §2.2. An optional predicate restricts the join key. Both sides are
// collected by the vectorized scan pipeline, whose value vectors double
// as the join keys — no per-tuple column access happens during build or
// probe. The smaller side is always the build side; output order is
// probe-side position order.
//
// HashJoin parallelises with the same auto heuristic as the scans: large
// joins collect, build and probe with GOMAXPROCS workers, small ones run
// serially. Use HashJoinPar to pin the worker count.
//
// In a database with amnesia, join results silently shrink as either
// side forgets matching tuples — JoinPrecision quantifies that loss.
func HashJoin(left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr, mode ScanMode) (*JoinResult, error) {
	return HashJoinPar(left, leftCol, right, rightCol, pred, mode, 0)
}

// HashJoinPar is HashJoin with an explicit parallelism knob, resolved
// like Exec.SetParallelism: 0 auto (parallel past a row threshold),
// 1 serial, n > 1 forces n workers. Every setting returns byte-identical
// results: the build preserves build-side insertion order per key (the
// radix scatter is chunk-major) and the probe emits per-morsel output
// slots concatenated in probe order.
func HashJoinPar(left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr, mode ScanMode, par int) (*JoinResult, error) {
	if pred == nil {
		pred = expr.True{}
	}
	collect := func(t *table.Table, colName string) (*Result, error) {
		ex := NewSilent(t)
		ex.SetParallelism(par)
		return ex.Select(colName, pred, mode)
	}
	l, err := collect(left, leftCol)
	if err != nil {
		return nil, err
	}
	r, err := collect(right, rightCol)
	if err != nil {
		return nil, err
	}

	// Build on the smaller side.
	swap := l.Count() > r.Count()
	build, probe := l, r
	if swap {
		build, probe = r, l
	}
	workers := Workers(par, build.Count()+probe.Count())
	ht := buildJoinTable(build.Values, build.Rows, workers)

	if workers <= 1 {
		out := &JoinResult{}
		out.Rows = probeRange(ht, probe, 0, probe.Count(), swap)
		return out, nil
	}
	// Morsel-parallel probe: each morsel fills its own output slot (the
	// hash table is read-only by now), and the slots concatenate in
	// morsel order, so pairs come back exactly as the serial probe emits
	// them.
	nm := (probe.Count() + ProbeMorselRows - 1) / ProbeMorselRows
	slots := make([][]JoinRow, nm)
	forEachMorsel(workers, nm, func(_, m int) {
		start := m * ProbeMorselRows
		end := start + ProbeMorselRows
		if end > probe.Count() {
			end = probe.Count()
		}
		slots[m] = probeRange(ht, probe, start, end, swap)
	})
	total := 0
	for _, s := range slots {
		total += len(s)
	}
	out := &JoinResult{}
	if total > 0 {
		out.Rows = make([]JoinRow, 0, total)
		for _, s := range slots {
			out.Rows = append(out.Rows, s...)
		}
	}
	return out, nil
}

// ProbeMorselRows is the probe-side morsel granularity of the parallel
// hash join. Probe input is the already-collected selection vector (not
// the column), so morsels are counted in qualifying rows rather than
// blocks. Exported so the bench CLI can report the worker count a probe
// of a given size actually admits.
const ProbeMorselRows = 64 * 1024

// joinTable is a hash table over the build side, radix-split by key so
// independent workers can populate disjoint partitions without locks.
// bits == 0 degenerates to one flat map (the serial build).
type joinTable struct {
	bits  uint
	parts []map[int64][]int32
}

// lookup returns the build-side positions matching key k, in build-side
// insertion order.
func (jt *joinTable) lookup(k int64) []int32 { return jt.parts[radixOf(k, jt.bits)][k] }

// radixOf maps a join key to its partition with a Fibonacci hash of the
// top bits, so clustered key ranges still spread across partitions.
func radixOf(k int64, bits uint) int {
	if bits == 0 {
		return 0
	}
	return int((uint64(k) * 0x9E3779B97F4A7C15) >> (64 - bits))
}

// buildJoinTable builds the partitioned hash table over the build side's
// keys and positions. The parallel build is a two-pass radix scatter:
// workers first count keys per (chunk, partition), a serial prefix sum
// turns the counts into disjoint write offsets, then workers scatter
// keys into per-partition arrays — chunk-major, so each partition sees
// keys in build order — and finally each partition's map is built by one
// worker. Every pass writes disjoint memory, so the build takes no
// locks.
func buildJoinTable(keys []int64, rows []int32, workers int) *joinTable {
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers <= 1 {
		ht := make(map[int64][]int32, len(keys))
		for i, k := range keys {
			ht[k] = append(ht[k], rows[i])
		}
		return &joinTable{parts: []map[int64][]int32{ht}}
	}
	nparts := 1 << uint(bits.Len(uint(workers-1))) // next power of two ≥ workers
	if nparts > 256 {
		nparts = 256
	}
	rbits := uint(bits.TrailingZeros(uint(nparts)))

	nchunks := workers
	chunk := (len(keys) + nchunks - 1) / nchunks
	// Ceiling division can push trailing chunk starts past the end when
	// len(keys) is barely above workers; chunkBounds clamps both edges.
	chunkBounds := func(c int) (lo, hi int) {
		lo = min(c*chunk, len(keys))
		hi = min(lo+chunk, len(keys))
		return lo, hi
	}
	counts := make([][]int, nchunks)
	forEachMorsel(workers, nchunks, func(_, c int) {
		cnt := make([]int, nparts)
		lo, hi := chunkBounds(c)
		for _, k := range keys[lo:hi] {
			cnt[radixOf(k, rbits)]++
		}
		counts[c] = cnt
	})
	// Prefix-sum chunk-major: partition p holds chunk 0's keys before
	// chunk 1's, preserving global build order within each partition.
	totals := make([]int, nparts)
	offsets := make([][]int, nchunks)
	for c := range offsets {
		offsets[c] = make([]int, nparts)
	}
	for p := 0; p < nparts; p++ {
		for c := 0; c < nchunks; c++ {
			offsets[c][p] = totals[p]
			totals[p] += counts[c][p]
		}
	}
	partKeys := make([][]int64, nparts)
	partRows := make([][]int32, nparts)
	for p := range partKeys {
		partKeys[p] = make([]int64, totals[p])
		partRows[p] = make([]int32, totals[p])
	}
	forEachMorsel(workers, nchunks, func(_, c int) {
		off := append([]int(nil), offsets[c]...)
		lo, hi := chunkBounds(c)
		for i := lo; i < hi; i++ {
			p := radixOf(keys[i], rbits)
			partKeys[p][off[p]] = keys[i]
			partRows[p][off[p]] = rows[i]
			off[p]++
		}
	})
	jt := &joinTable{bits: rbits, parts: make([]map[int64][]int32, nparts)}
	forEachMorsel(workers, nparts, func(_, p int) {
		ht := make(map[int64][]int32, len(partKeys[p]))
		for i, k := range partKeys[p] {
			ht[k] = append(ht[k], partRows[p][i])
		}
		jt.parts[p] = ht
	})
	return jt
}

// probeRange probes rows [start, end) of the probe side against the
// hash table, returning matches in probe order (and, per probe key,
// build order). Both the serial join and every probe morsel use this
// one loop, so the two paths cannot drift apart.
func probeRange(jt *joinTable, probe *Result, start, end int, swap bool) []JoinRow {
	var out []JoinRow
	for i := start; i < end; i++ {
		k := probe.Values[i]
		p := probe.Rows[i]
		for _, b := range jt.lookup(k) {
			row := JoinRow{Key: k}
			if swap {
				row.Left, row.Right = p, b
			} else {
				row.Left, row.Right = b, p
			}
			out = append(out, row)
		}
	}
	return out
}

// JoinPrecision runs the join under ScanActive and ScanAll and reports
// the §2.3 metrics lifted to join results: pairs returned, pairs missed
// because at least one side forgot its tuple, and the precision ratio.
func JoinPrecision(left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr) (rf, mf int, pf float64, err error) {
	return JoinPrecisionPar(left, leftCol, right, rightCol, pred, 0)
}

// JoinPrecisionPar is JoinPrecision with an explicit parallelism knob.
func JoinPrecisionPar(left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr, par int) (rf, mf int, pf float64, err error) {
	act, err := HashJoinPar(left, leftCol, right, rightCol, pred, ScanActive, par)
	if err != nil {
		return 0, 0, 0, err
	}
	all, err := HashJoinPar(left, leftCol, right, rightCol, pred, ScanAll, par)
	if err != nil {
		return 0, 0, 0, err
	}
	rf = act.Count()
	mf = all.Count() - rf
	if rf+mf == 0 {
		return 0, 0, 1, nil
	}
	return rf, mf, float64(rf) / float64(rf+mf), nil
}
