package engine

import (
	"context"
	"errors"
	"math/bits"
	"sync"

	"amnesiadb/internal/engine/governor"
	"amnesiadb/internal/engine/sched"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
)

// JoinRow is one equi-join match: positions into the left and right
// tables plus the join key.
type JoinRow struct {
	Left  int32
	Right int32
	Key   int64
}

// JoinResult is the output of HashJoin.
type JoinResult struct {
	Rows []JoinRow
}

// Count returns the number of joined pairs.
func (r *JoinResult) Count() int { return len(r.Rows) }

// HashJoin computes the equi-join left.leftCol = right.rightCol over
// tuples visible under mode, completing the SELECT-PROJECT-JOIN subspace
// of §2.2. An optional predicate restricts the join key. Both sides are
// collected by the vectorized scan pipeline, whose value vectors double
// as the join keys — no per-tuple column access happens during build or
// probe. The smaller side is always the build side; output order is
// probe-side position order.
//
// HashJoin parallelises with the same auto heuristic as the scans: large
// joins collect, build and probe with GOMAXPROCS workers, small ones run
// serially. Use HashJoinPar to pin the worker count.
//
// In a database with amnesia, join results silently shrink as either
// side forgets matching tuples — JoinPrecision quantifies that loss.
func HashJoin(left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr, mode ScanMode) (*JoinResult, error) {
	return HashJoinPar(left, leftCol, right, rightCol, pred, mode, 0)
}

// HashJoinPar is HashJoin with an explicit parallelism knob, resolved
// like Exec.SetParallelism: 0 auto (parallel past a row threshold),
// 1 serial, n > 1 forces n workers. Every setting returns byte-identical
// results: the build preserves build-side insertion order per key (the
// radix scatter is chunk-major) and the probe emits per-morsel output
// slots concatenated in probe order.
func HashJoinPar(left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr, mode ScanMode, par int) (*JoinResult, error) {
	//lint:ignore ctxflow HashJoinPar is the sanctioned ctx-less compat entry; request paths use HashJoinCtx.
	return HashJoinCtx(context.Background(), left, leftCol, right, rightCol, pred, mode, par)
}

// joinSize predicts a side's qualifying-row magnitude before any scan
// runs: the visible tuple count under the scan mode. It steers which
// side's scatter starts while collecting — a performance guess only; the
// actual build-side choice still uses the exact qualifying counts, so
// output never depends on the prediction.
func joinSize(t *table.Table, mode ScanMode) int {
	if mode == ScanAll {
		return t.Stats().Tuples
	}
	return t.ActiveCount()
}

// HashJoinCtx is HashJoinPar with request-scoped cancellation and a
// pipelined build: instead of collecting the left side, then the right
// side, then scattering the build side and finally constructing the hash
// maps, both sides' scans stream concurrently, and the side predicted to
// be the build (the smaller visible tuple count) feeds an incremental
// radix scatter as its chunks arrive — the scatter finishes essentially
// when the scan does, overlapping the collect and build phases. If the
// prediction turns out wrong (the predicate qualified the other side
// smaller), the join falls back to the two-pass scatter on the true
// build side, no worse than the unpipelined join. Every path — serial,
// pipelined, mispredicted — emits byte-identical rows: the build-side
// choice uses exact qualifying counts, per-key match lists stay in
// build-side insertion order, and the probe emits in probe order.
// Cancelling ctx tears down the side scans mid-collection.
func HashJoinCtx(ctx context.Context, left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr, mode ScanMode, par int) (*JoinResult, error) {
	return HashJoinSched(ctx, nil, left, leftCol, right, rightCol, pred, mode, par)
}

// HashJoinSched is HashJoinCtx with collection, build and probe all
// dispatched through a shared worker pool when sp is non-nil: the side
// scans stream through pool-scheduled pipelines and the scatter, map
// build and probe morsels run as pool queries, so a join competes
// fair-share with every other active query instead of spawning its own
// worker complement. Results stay byte-identical to every other path.
func HashJoinSched(ctx context.Context, sp *sched.Pool, left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr, mode ScanMode, par int) (*JoinResult, error) {
	if pred == nil {
		pred = expr.True{}
	}
	workers := WorkersSched(sp, par, joinSize(left, mode)+joinSize(right, mode))
	if workers <= 1 {
		return hashJoinSerial(ctx, left, leftCol, right, rightCol, pred, mode, par)
	}

	nparts := 1 << uint(bits.Len(uint(workers-1))) // next power of two >= workers
	if nparts > 256 {
		nparts = 256
	}
	rbits := uint(bits.TrailingZeros(uint(nparts)))

	// buildGuess is the side whose scatter starts while collecting.
	buildGuess := 0
	if joinSize(left, mode) > joinSize(right, mode) {
		buildGuess = 1
	}
	type sideState struct {
		chunks []SelChunk
		count  int
		scat   *radixScatter
		err    error
	}
	sides := [2]*sideState{{}, {}}
	sides[buildGuess].scat = newRadixScatter(rbits)
	tables := [2]*table.Table{left, right}
	cols := [2]string{leftCol, rightCol}

	// One side failing (bad column, cancellation) must not leave the
	// sibling scanning its whole table before the error can surface:
	// both collections share a cancel.
	jctx, cancelSides := context.WithCancel(ctx)
	defer cancelSides()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := sides[i]
			ex := NewSilent(tables[i])
			ex.SetParallelism(par)
			ex.SetScheduler(sp)
			cs, err := ex.SelectChunkStream(jctx, cols[i], pred, mode)
			if err != nil {
				st.err = err
				cancelSides()
				return
			}
			defer cs.Close()
			for {
				c, ok, err := cs.Next()
				if err != nil {
					st.err = err
					cancelSides()
					return
				}
				if !ok {
					return
				}
				st.chunks = append(st.chunks, c)
				st.count += len(c.Values)
				if st.scat != nil {
					// Incremental chunk-major scatter: chunks arrive in
					// insertion order from the single stream, so each
					// partition sees keys in global build order.
					st.scat.add(c)
				}
			}
		}(i)
	}
	wg.Wait()
	var sideErr error
	for _, st := range sides {
		if st.err == nil {
			continue
		}
		// Prefer the concrete failure over the cancellation it induced
		// on the sibling.
		if sideErr == nil || errors.Is(sideErr, context.Canceled) {
			sideErr = st.err
		}
	}
	if sideErr != nil {
		return nil, sideErr
	}

	// Both sides are about to be flattened (probe vector, build scatter
	// or two-pass table): charge the flat copies against the query's
	// quota for the duration of build+probe, on top of the chunk charges
	// the side collections are still holding. An over-budget join dies
	// here, before the big allocations, with only its own quota latched.
	quota := governor.FromContext(ctx)
	flatBytes := int64(sides[0].count+sides[1].count) * (4 + 8)
	if err := quota.Acquire(flatBytes); err != nil {
		recycleChunks(sides[0].chunks)
		recycleChunks(sides[1].chunks)
		return nil, err
	}
	defer quota.Release(flatBytes)

	// The real build side is the smaller qualifying side — the same rule
	// the serial join applies, so probe order (and with it the output)
	// is identical at every parallelism.
	swap := sides[0].count > sides[1].count
	buildIdx := 0
	if swap {
		buildIdx = 1
	}
	probe := chunksToResult(sides[1-buildIdx].chunks)
	var ht *joinTable
	if buildIdx == buildGuess {
		ht = sides[buildGuess].scat.table(sp, workers)
		recycleChunks(sides[buildGuess].chunks)
	} else {
		// Misprediction: scatter the true build side the old two-pass
		// way; the speculative scatter is discarded.
		build := chunksToResult(sides[buildIdx].chunks)
		ht = buildJoinTableSched(sp, build.Values, build.Rows, workers)
	}

	// Morsel-parallel probe: each morsel fills its own output slot (the
	// hash table is read-only by now), and the slots concatenate in
	// morsel order, so pairs come back exactly as the serial probe emits
	// them.
	nm := (probe.Count() + ProbeMorselRows - 1) / ProbeMorselRows
	slots := make([][]JoinRow, nm)
	forEachMorselSched(sp, workers, nm, func(_, m int) {
		start := m * ProbeMorselRows
		end := start + ProbeMorselRows
		if end > probe.Count() {
			end = probe.Count()
		}
		slots[m] = probeRange(ht, probe, start, end, swap)
	})
	total := 0
	for _, s := range slots {
		total += len(s)
	}
	// The concatenated output is the join's last big allocation; charge
	// it transiently so a fan-out join (many matches per key) cannot
	// silently multiply past the budget during materialization.
	outBytes := int64(total) * 16
	if err := quota.Acquire(outBytes); err != nil {
		return nil, err
	}
	defer quota.Release(outBytes)
	out := &JoinResult{}
	if total > 0 {
		out.Rows = make([]JoinRow, 0, total)
		for _, s := range slots {
			out.Rows = append(out.Rows, s...)
		}
	}
	return out, nil
}

// hashJoinSerial is the unpipelined join small inputs take: collect both
// sides, build a flat map on the smaller, probe in order. It is the
// byte-identity reference for every pipelined path.
func hashJoinSerial(ctx context.Context, left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr, mode ScanMode, par int) (*JoinResult, error) {
	// Same resource accounting as the scheduled join: the flat side
	// collections and the materialized output charge the query's quota
	// transiently, so an over-budget join dies identically whether the
	// pool granted it one worker or many.
	quota := governor.FromContext(ctx)
	if err := quota.Check(); err != nil {
		return nil, err
	}
	collect := func(t *table.Table, colName string) (*Result, error) {
		ex := NewSilent(t)
		ex.SetParallelism(par)
		return ex.Select(colName, pred, mode)
	}
	l, err := collect(left, leftCol)
	if err != nil {
		return nil, err
	}
	r, err := collect(right, rightCol)
	if err != nil {
		return nil, err
	}
	flatBytes := int64(l.Count()+r.Count()) * (4 + 8)
	if err := quota.Acquire(flatBytes); err != nil {
		return nil, err
	}
	defer quota.Release(flatBytes)

	// Build on the smaller side.
	swap := l.Count() > r.Count()
	build, probe := l, r
	if swap {
		build, probe = r, l
	}
	ht := buildJoinTable(build.Values, build.Rows, 1)
	rows := probeRange(ht, probe, 0, probe.Count(), swap)
	outBytes := int64(len(rows)) * 16
	if err := quota.Acquire(outBytes); err != nil {
		return nil, err
	}
	quota.Release(outBytes)
	return &JoinResult{Rows: rows}, nil
}

// chunksToResult flattens streamed scan chunks into the exact-size flat
// Result the probe loop walks, recycling the chunk buffers.
func chunksToResult(chunks []SelChunk) *Result {
	total := 0
	for _, c := range chunks {
		total += len(c.Values)
	}
	res := &Result{}
	if total > 0 {
		res.Rows = make([]int32, 0, total)
		res.Values = make([]int64, 0, total)
		for _, c := range chunks {
			res.Rows = append(res.Rows, c.Rows...)
			res.Values = append(res.Values, c.Values...)
		}
	}
	recycleChunks(chunks)
	return res
}

// radixScatter accumulates build-side keys into radix partitions
// incrementally, one chunk at a time, as the build scan streams in. A
// single goroutine adds chunks in arrival order, so each partition's
// arrays stay in global build order — exactly what the two-pass
// chunk-major scatter produces, without waiting for the full collection.
type radixScatter struct {
	bits uint
	keys [][]int64
	rows [][]int32
}

func newRadixScatter(rbits uint) *radixScatter {
	n := 1 << rbits
	return &radixScatter{bits: rbits, keys: make([][]int64, n), rows: make([][]int32, n)}
}

// add scatters one chunk's keys and positions into the partitions.
func (s *radixScatter) add(c SelChunk) {
	for i, k := range c.Values {
		p := radixOf(k, s.bits)
		s.keys[p] = append(s.keys[p], k)
		s.rows[p] = append(s.rows[p], c.Rows[i])
	}
}

// table builds the per-partition hash maps — one worker per partition,
// lock-free — over the scattered arrays.
func (s *radixScatter) table(sp *sched.Pool, workers int) *joinTable {
	jt := &joinTable{bits: s.bits, parts: make([]map[int64][]int32, len(s.keys))}
	forEachMorselSched(sp, workers, len(s.keys), func(_, p int) {
		ht := make(map[int64][]int32, len(s.keys[p]))
		for i, k := range s.keys[p] {
			ht[k] = append(ht[k], s.rows[p][i])
		}
		jt.parts[p] = ht
	})
	return jt
}

// ProbeMorselRows is the probe-side morsel granularity of the parallel
// hash join. Probe input is the already-collected selection vector (not
// the column), so morsels are counted in qualifying rows rather than
// blocks. Exported so the bench CLI can report the worker count a probe
// of a given size actually admits.
const ProbeMorselRows = 64 * 1024

// joinTable is a hash table over the build side, radix-split by key so
// independent workers can populate disjoint partitions without locks.
// bits == 0 degenerates to one flat map (the serial build).
type joinTable struct {
	bits  uint
	parts []map[int64][]int32
}

// lookup returns the build-side positions matching key k, in build-side
// insertion order.
func (jt *joinTable) lookup(k int64) []int32 { return jt.parts[radixOf(k, jt.bits)][k] }

// radixOf maps a join key to its partition with a Fibonacci hash of the
// top bits, so clustered key ranges still spread across partitions.
func radixOf(k int64, bits uint) int {
	if bits == 0 {
		return 0
	}
	return int((uint64(k) * 0x9E3779B97F4A7C15) >> (64 - bits))
}

// buildJoinTable builds the partitioned hash table over the build side's
// keys and positions. The parallel build is a two-pass radix scatter:
// workers first count keys per (chunk, partition), a serial prefix sum
// turns the counts into disjoint write offsets, then workers scatter
// keys into per-partition arrays — chunk-major, so each partition sees
// keys in build order — and finally each partition's map is built by one
// worker. Every pass writes disjoint memory, so the build takes no
// locks.
func buildJoinTable(keys []int64, rows []int32, workers int) *joinTable {
	return buildJoinTableSched(nil, keys, rows, workers)
}

// buildJoinTableSched is buildJoinTable with the scatter passes
// dispatched through a shared pool when sp is non-nil.
func buildJoinTableSched(sp *sched.Pool, keys []int64, rows []int32, workers int) *joinTable {
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers <= 1 {
		ht := make(map[int64][]int32, len(keys))
		for i, k := range keys {
			ht[k] = append(ht[k], rows[i])
		}
		return &joinTable{parts: []map[int64][]int32{ht}}
	}
	nparts := 1 << uint(bits.Len(uint(workers-1))) // next power of two ≥ workers
	if nparts > 256 {
		nparts = 256
	}
	rbits := uint(bits.TrailingZeros(uint(nparts)))

	nchunks := workers
	chunk := (len(keys) + nchunks - 1) / nchunks
	// Ceiling division can push trailing chunk starts past the end when
	// len(keys) is barely above workers; chunkBounds clamps both edges.
	chunkBounds := func(c int) (lo, hi int) {
		lo = min(c*chunk, len(keys))
		hi = min(lo+chunk, len(keys))
		return lo, hi
	}
	counts := make([][]int, nchunks)
	forEachMorselSched(sp, workers, nchunks, func(_, c int) {
		cnt := make([]int, nparts)
		lo, hi := chunkBounds(c)
		for _, k := range keys[lo:hi] {
			cnt[radixOf(k, rbits)]++
		}
		counts[c] = cnt
	})
	// Prefix-sum chunk-major: partition p holds chunk 0's keys before
	// chunk 1's, preserving global build order within each partition.
	totals := make([]int, nparts)
	offsets := make([][]int, nchunks)
	for c := range offsets {
		offsets[c] = make([]int, nparts)
	}
	for p := 0; p < nparts; p++ {
		for c := 0; c < nchunks; c++ {
			offsets[c][p] = totals[p]
			totals[p] += counts[c][p]
		}
	}
	partKeys := make([][]int64, nparts)
	partRows := make([][]int32, nparts)
	for p := range partKeys {
		partKeys[p] = make([]int64, totals[p])
		partRows[p] = make([]int32, totals[p])
	}
	forEachMorselSched(sp, workers, nchunks, func(_, c int) {
		off := append([]int(nil), offsets[c]...)
		lo, hi := chunkBounds(c)
		for i := lo; i < hi; i++ {
			p := radixOf(keys[i], rbits)
			partKeys[p][off[p]] = keys[i]
			partRows[p][off[p]] = rows[i]
			off[p]++
		}
	})
	jt := &joinTable{bits: rbits, parts: make([]map[int64][]int32, nparts)}
	forEachMorselSched(sp, workers, nparts, func(_, p int) {
		ht := make(map[int64][]int32, len(partKeys[p]))
		for i, k := range partKeys[p] {
			ht[k] = append(ht[k], partRows[p][i])
		}
		jt.parts[p] = ht
	})
	return jt
}

// probeRange probes rows [start, end) of the probe side against the
// hash table, returning matches in probe order (and, per probe key,
// build order). Both the serial join and every probe morsel use this
// one loop, so the two paths cannot drift apart.
func probeRange(jt *joinTable, probe *Result, start, end int, swap bool) []JoinRow {
	var out []JoinRow
	for i := start; i < end; i++ {
		k := probe.Values[i]
		p := probe.Rows[i]
		for _, b := range jt.lookup(k) {
			row := JoinRow{Key: k}
			if swap {
				row.Left, row.Right = p, b
			} else {
				row.Left, row.Right = b, p
			}
			out = append(out, row)
		}
	}
	return out
}

// JoinPrecision runs the join under ScanActive and ScanAll and reports
// the §2.3 metrics lifted to join results: pairs returned, pairs missed
// because at least one side forgot its tuple, and the precision ratio.
func JoinPrecision(left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr) (rf, mf int, pf float64, err error) {
	return JoinPrecisionPar(left, leftCol, right, rightCol, pred, 0)
}

// JoinPrecisionPar is JoinPrecision with an explicit parallelism knob.
func JoinPrecisionPar(left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr, par int) (rf, mf int, pf float64, err error) {
	//lint:ignore ctxflow JoinPrecisionPar is the sanctioned ctx-less compat entry; request paths use JoinPrecisionSched.
	return JoinPrecisionSched(context.Background(), nil, left, leftCol, right, rightCol, pred, par)
}

// JoinPrecisionSched is JoinPrecisionPar over a shared worker pool with
// request-scoped cancellation: ctx tears down both underlying joins.
func JoinPrecisionSched(ctx context.Context, sp *sched.Pool, left *table.Table, leftCol string, right *table.Table, rightCol string, pred expr.Expr, par int) (rf, mf int, pf float64, err error) {
	act, err := HashJoinSched(ctx, sp, left, leftCol, right, rightCol, pred, ScanActive, par)
	if err != nil {
		return 0, 0, 0, err
	}
	all, err := HashJoinSched(ctx, sp, left, leftCol, right, rightCol, pred, ScanAll, par)
	if err != nil {
		return 0, 0, 0, err
	}
	rf = act.Count()
	mf = all.Count() - rf
	if rf+mf == 0 {
		return 0, 0, 1, nil
	}
	return rf, mf, float64(rf) / float64(rf+mf), nil
}
