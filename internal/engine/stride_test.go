package engine

import (
	"context"
	"testing"

	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
)

// strideTable builds an n-row single-column table for cursor tests.
func strideTable(t *testing.T, n int) *table.Table {
	t.Helper()
	tb := table.New("s", "a")
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestStrideHintSeedsCursor pins the warm-start: a recorded effective
// stride seeds the next scan's adaptive cursor, while out-of-range
// hints (below the base stride or above the cap) are ignored.
func TestStrideHintSeedsCursor(t *testing.T) {
	tb := strideTable(t, 10*MorselBlocks*128)
	ex := NewSilent(tb)
	c := tb.MustColumn("a")
	if cur := ex.newMorsels(c); cur.stride != MorselBlocks {
		t.Fatalf("fresh cursor stride = %d, want base %d", cur.stride, MorselBlocks)
	}
	tb.RecordScanStride(4 * MorselBlocks)
	if cur := ex.newMorsels(c); cur.stride != 4*MorselBlocks {
		t.Fatalf("seeded stride = %d, want %d", cur.stride, 4*MorselBlocks)
	}
	tb.RecordScanStride(2 * MaxMorselBlocks) // bogus: above the cap
	if cur := ex.newMorsels(c); cur.stride != MorselBlocks {
		t.Fatalf("over-cap hint used: stride = %d", cur.stride)
	}
	tb.RecordScanStride(1) // bogus: below the base
	if cur := ex.newMorsels(c); cur.stride != MorselBlocks {
		t.Fatalf("under-base hint used: stride = %d", cur.stride)
	}
}

// TestScanRecordsStrideHint pins the feedback edge: draining a
// streaming scan (and collecting a materialized one) stores the
// effective stride on the table for the next query to start from.
func TestScanRecordsStrideHint(t *testing.T) {
	tb := strideTable(t, 4*MorselBlocks*128)
	if got := tb.ScanStrideHint(); got != 0 {
		t.Fatalf("fresh table has stride hint %d", got)
	}
	ex := NewSilent(tb)
	st, err := ex.SelectChunkStream(context.Background(), "a", expr.True{}, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if got := tb.ScanStrideHint(); got < MorselBlocks {
		t.Fatalf("streamed scan recorded stride %d, want >= %d", got, MorselBlocks)
	}
	tb.RecordScanStride(0) // RecordScanStride ignores zero...
	if got := tb.ScanStrideHint(); got < MorselBlocks {
		t.Fatal("zero record clobbered the hint")
	}
	if _, err := ex.Select("a", expr.True{}, ScanActive); err != nil {
		t.Fatal(err)
	}
	if got := tb.ScanStrideHint(); got < MorselBlocks {
		t.Fatalf("materialized scan recorded stride %d, want >= %d", got, MorselBlocks)
	}
}
