package engine

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// parallelTestRows spans four morsels at the default block size, so a
// forced-parallel scan genuinely splits across workers.
const parallelTestRows = 4 * parallelMinRows

// parallelTable builds a table large enough for several morsels and
// applies the named active-bitmap shape.
func parallelTable(t testing.TB, shape string) *table.Table {
	t.Helper()
	src := xrand.New(7)
	tb := table.New("t", "a")
	vals := make([]int64, parallelTestRows)
	for i := range vals {
		vals[i] = src.Int63n(1 << 17)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	switch shape {
	case "all-active":
	case "every-other":
		for i := 0; i < tb.Len(); i += 2 {
			tb.Forget(i)
		}
	case "block-runs":
		// Whole blocks forgotten, exercising the word-parallel skip of
		// fully clear bitmap words.
		for i := 0; i < tb.Len(); i++ {
			if (i/1024)%3 == 0 {
				tb.Forget(i)
			}
		}
	case "random":
		for i := 0; i < tb.Len(); i++ {
			if src.Int63n(10) < 4 {
				tb.Forget(i)
			}
		}
	case "all-forgotten":
		for i := 0; i < tb.Len(); i++ {
			tb.Forget(i)
		}
	default:
		t.Fatalf("unknown shape %q", shape)
	}
	return tb
}

// equivalencePredicates covers exact bounds (pure range scans), inexact
// bounds (filter kernel engaged), disjunctions, negation and full scans.
func equivalencePredicates() map[string]expr.Expr {
	return map[string]expr.Expr{
		"range":      expr.NewRange(1<<14, 1<<16),
		"full":       expr.True{},
		"eq":         expr.Cmp{Op: expr.EQ, Val: 12345},
		"ne-inexact": expr.Cmp{Op: expr.NE, Val: 500},
		"or-inexact": expr.Or{L: expr.NewRange(0, 1000), R: expr.NewRange(1<<16, 1<<17)},
		"not":        expr.Not{X: expr.NewRange(1000, 1<<16)},
		"empty":      expr.NewRange(1<<20, 1<<21),
	}
}

var bitmapShapes = []string{"all-active", "every-other", "block-runs", "random", "all-forgotten"}

func TestParallelSelectEquivalence(t *testing.T) {
	for _, shape := range bitmapShapes {
		tb := parallelTable(t, shape)
		serial := NewSilent(tb)
		serial.SetParallelism(1)
		parallel := NewSilent(tb)
		parallel.SetParallelism(4)
		for name, pred := range equivalencePredicates() {
			for _, mode := range []ScanMode{ScanActive, ScanAll} {
				want, err := serial.Select("a", pred, mode)
				if err != nil {
					t.Fatal(err)
				}
				got, err := parallel.Select("a", pred, mode)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.Rows, got.Rows) {
					t.Fatalf("%s/%s/%s: parallel rows diverge: %d vs %d rows", shape, name, mode, len(want.Rows), len(got.Rows))
				}
				if !reflect.DeepEqual(want.Values, got.Values) {
					t.Fatalf("%s/%s/%s: parallel values diverge", shape, name, mode)
				}
				for i := 1; i < len(got.Rows); i++ {
					if got.Rows[i] <= got.Rows[i-1] {
						t.Fatalf("%s/%s/%s: parallel rows not in insertion order at %d", shape, name, mode, i)
					}
				}
			}
		}
	}
}

func TestParallelAggregateEquivalence(t *testing.T) {
	for _, shape := range bitmapShapes {
		tb := parallelTable(t, shape)
		serial := NewSilent(tb)
		serial.SetParallelism(1)
		parallel := NewSilent(tb)
		parallel.SetParallelism(4)
		for name, pred := range equivalencePredicates() {
			for _, mode := range []ScanMode{ScanActive, ScanAll} {
				want, errS := serial.Aggregate("a", pred, mode)
				got, errP := parallel.Aggregate("a", pred, mode)
				if (errS == nil) != (errP == nil) {
					t.Fatalf("%s/%s/%s: error mismatch: serial %v, parallel %v", shape, name, mode, errS, errP)
				}
				if errS != nil {
					if errS != ErrNoRows || errP != ErrNoRows {
						t.Fatalf("%s/%s/%s: unexpected errors %v / %v", shape, name, mode, errS, errP)
					}
					continue
				}
				if want.Rows != got.Rows || want.Sum != got.Sum || want.Min != got.Min || want.Max != got.Max || want.Avg != got.Avg {
					t.Fatalf("%s/%s/%s: aggregate diverges: %+v vs %+v", shape, name, mode, want, got)
				}
			}
		}
	}
}

// TestParallelAggregateRowerOrdered checks the feedback path: a touching
// parallel aggregate reports the same contributing rows, in the same
// insertion order, as the serial one.
func TestParallelAggregateRowerOrdered(t *testing.T) {
	tb := parallelTable(t, "every-other")
	serial := New(tb)
	serial.SetParallelism(1)
	parallel := New(tb)
	parallel.SetParallelism(4)
	pred := expr.NewRange(0, 1<<16)
	want, err := serial.Aggregate("a", pred, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.Aggregate("a", pred, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Rower, got.Rower) {
		t.Fatalf("parallel Rower diverges: %d vs %d rows", len(want.Rower), len(got.Rower))
	}
}

func TestParallelGroupByEquivalence(t *testing.T) {
	tb := parallelTable(t, "random")
	serial := NewSilent(tb)
	serial.SetParallelism(1)
	parallel := NewSilent(tb)
	parallel.SetParallelism(4)
	pred := expr.Cmp{Op: expr.NE, Val: 77}
	for _, width := range []int64{0, 1000} {
		var want, got []Group
		var errS, errP error
		if width == 0 {
			want, errS = serial.GroupByValue("a", pred, ScanActive)
			got, errP = parallel.GroupByValue("a", pred, ScanActive)
		} else {
			want, errS = serial.GroupByBucket("a", pred, ScanActive, width)
			got, errP = parallel.GroupByBucket("a", pred, ScanActive, width)
		}
		if errS != nil || errP != nil {
			t.Fatal(errS, errP)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("width %d: parallel group-by diverges: %d vs %d groups", width, len(want), len(got))
		}
	}
}

func TestParallelPrecisionEquivalence(t *testing.T) {
	tb := parallelTable(t, "random")
	serial := NewSilent(tb)
	serial.SetParallelism(1)
	parallel := NewSilent(tb)
	parallel.SetParallelism(4)
	for name, pred := range equivalencePredicates() {
		rfS, mfS, pfS, err := serial.Precision("a", pred)
		if err != nil {
			t.Fatal(err)
		}
		rfP, mfP, pfP, err := parallel.Precision("a", pred)
		if err != nil {
			t.Fatal(err)
		}
		if rfS != rfP || mfS != mfP || pfS != pfP {
			t.Fatalf("%s: precision diverges: (%d,%d,%v) vs (%d,%d,%v)", name, rfS, mfS, pfS, rfP, mfP, pfP)
		}
	}
}

// TestSilentPrecisionAllocatesNothing pins the counting-only Precision
// path: a silent executor's precision sweep must not materialize rows.
func TestSilentPrecisionAllocatesNothing(t *testing.T) {
	tb := parallelTable(t, "every-other")
	ex := NewSilent(tb)
	ex.SetParallelism(1)
	pred := expr.NewRange(0, 1<<16)
	if _, _, _, err := ex.Precision("a", pred); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, _, err := ex.Precision("a", pred); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("silent Precision allocated %v objects per run, want ~0", allocs)
	}
}

// TestParallelSelectTouchesOnce verifies the §3.2 feedback under the
// parallel path: one query increments each matched row's access count by
// exactly one (one merged TouchMany flush, no double counting).
func TestParallelSelectTouchesOnce(t *testing.T) {
	tb := parallelTable(t, "every-other")
	ex := New(tb)
	ex.SetParallelism(4)
	res, err := ex.Select("a", expr.NewRange(0, 1<<15), ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() == 0 {
		t.Fatal("empty result undermines the test")
	}
	for _, r := range res.Rows {
		if got := tb.AccessCount(int(r)); got != 1 {
			t.Fatalf("row %d access count %d after one query, want 1", r, got)
		}
	}
}

// TestParallelMidBatchResume forces batch-full boundaries to land inside
// active bitmap words: a dense low-value run with every bit set makes
// each 1024-row batch fill mid-word, exercising the resume position
// returned by the word-parallel kernel.
func TestParallelMidBatchResume(t *testing.T) {
	tb := table.New("t", "a")
	vals := make([]int64, 3*parallelMinRows)
	for i := range vals {
		vals[i] = int64(i % 100) // every row matches [0, 100)
	}
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tb.Len(); i += 7 {
		tb.Forget(i)
	}
	serial := NewSilent(tb)
	serial.SetParallelism(1)
	parallel := NewSilent(tb)
	parallel.SetParallelism(3)
	pred := expr.NewRange(0, 100)
	want, err := serial.Select("a", pred, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.Select("a", pred, ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) || !reflect.DeepEqual(want.Values, got.Values) {
		t.Fatalf("mid-batch resume diverges: %d vs %d rows", len(want.Rows), len(got.Rows))
	}
}

// TestParallelWorkersExceedMorsels pins the degenerate split: more
// forced workers than morsels must not deadlock, drop rows or panic.
func TestParallelWorkersExceedMorsels(t *testing.T) {
	tb := tbl(t, 5, 15, 25, 35, 45)
	ex := NewSilent(tb)
	ex.SetParallelism(16)
	res, err := ex.Select("a", expr.NewRange(10, 40), ScanActive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 3 {
		t.Fatalf("got %d rows, want 3", res.Count())
	}
}

// TestParallelConcurrentQueries races concurrent morsel-parallel
// queries — touching and silent, selects, aggregates, group-bys and
// precision sweeps — against explicit TouchMany flushes on the same
// table. Run under -race in CI, it proves intra-query workers share the
// table without unsynchronized state.
func TestParallelConcurrentQueries(t *testing.T) {
	tb := parallelTable(t, "every-other")
	pred := expr.NewRange(0, 1<<16)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex := New(tb)
			ex.SetParallelism(2 + w%3)
			for r := 0; r < 3; r++ {
				switch (w + r) % 4 {
				case 0:
					if _, err := ex.Select("a", pred, ScanActive); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := ex.Aggregate("a", pred, ScanActive); err != nil && err != ErrNoRows {
						errs <- err
						return
					}
				case 2:
					if _, err := ex.GroupByBucket("a", pred, ScanActive, 4096); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, _, _, err := ex.Precision("a", pred); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	// Competing touch flushes from outside the engine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rows := []int32{1, 3, 5, 7, 1021, 1023, 65537}
		for i := 0; i < 50; i++ {
			tb.TouchMany(rows)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWorkersForKnob pins the knob semantics: auto engages only past
// the row threshold, explicit values are obeyed verbatim.
func TestWorkersForKnob(t *testing.T) {
	tb := tbl(t, 1, 2, 3)
	ex := NewSilent(tb)
	if got := ex.workersFor(parallelMinRows - 1); got != 1 {
		t.Fatalf("auto below threshold: %d workers, want 1", got)
	}
	if got := ex.workersFor(parallelMinRows); got < 1 {
		t.Fatalf("auto at threshold: %d workers", got)
	}
	ex.SetParallelism(1)
	if got := ex.workersFor(math.MaxInt32); got != 1 {
		t.Fatalf("forced serial: %d workers, want 1", got)
	}
	ex.SetParallelism(6)
	if got := ex.workersFor(10); got != 6 {
		t.Fatalf("forced 6: %d workers", got)
	}
	ex.SetParallelism(-3)
	if got := ex.Parallelism(); got != 0 {
		t.Fatalf("negative knob clamped to %d, want 0", got)
	}
}
