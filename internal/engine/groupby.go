package engine

import (
	"fmt"
	"math"
	"sort"

	"amnesiadb/internal/bitvec"
	"amnesiadb/internal/expr"
)

// Group is one bucket of a grouped aggregation.
type Group struct {
	// Key is the group's value: for GroupByValue the attribute value
	// itself, for GroupByBucket the bucket's lower bound.
	Key int64
	// Agg carries COUNT/SUM/AVG/MIN/MAX over the group's members.
	Rows int
	Sum  int64
	Min  int64
	Max  int64
	Avg  float64
}

// GroupByValue aggregates column col grouped by its exact values over
// tuples satisfying pred under mode, returning groups in ascending key
// order. With amnesia active, whole groups can silently vanish when all
// their members are forgotten — the grouped flavour of incomplete
// results.
func (e *Exec) GroupByValue(col string, pred expr.Expr, mode ScanMode) ([]Group, error) {
	return e.groupBy(col, pred, mode, 0)
}

// GroupByBucket aggregates column col into equi-width buckets of the
// given width (> 0), the typical form of the paper's "aggregated
// summaries over scientific data".
func (e *Exec) GroupByBucket(col string, pred expr.Expr, mode ScanMode, width int64) ([]Group, error) {
	if width <= 0 {
		return nil, fmt.Errorf("engine: bucket width %d must be positive", width)
	}
	return e.groupBy(col, pred, mode, width)
}

// groupBy folds each scan batch straight into a group hash table; rows
// are only retained when the access-frequency feedback needs them.
// Large scans run morsel-parallel with per-worker tables merged before
// the sort.
func (e *Exec) groupBy(col string, pred expr.Expr, mode ScanMode, width int64) ([]Group, error) {
	c, err := e.t.Column(col)
	if err != nil {
		return nil, err
	}
	touching := e.touch && mode == ScanActive
	var touched []int32
	var byKey map[int64]*Group
	if w := e.workersFor(c.Len()); w > 1 {
		var active *bitvec.Vector
		if mode == ScanActive {
			active = e.t.Active()
		}
		byKey, touched = e.groupByParallel(c, pred, active, width, w, touching)
	} else {
		byKey = make(map[int64]*Group)
		e.scanBatches(c, pred, mode, func(sel []int32, val []int64) {
			if touching {
				touched = append(touched, sel...)
			}
			foldGroups(byKey, val, width)
		})
	}
	out := make([]Group, 0, len(byKey))
	for _, g := range byKey {
		g.Avg = float64(g.Sum) / float64(g.Rows)
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if touching {
		e.t.TouchMany(touched)
	}
	return out, nil
}

// foldGroups accumulates one batch of values into the group table,
// bucketing by width when positive (floor division, so negative values
// land in the bucket below zero, not above).
func foldGroups(byKey map[int64]*Group, val []int64, width int64) {
	for _, v := range val {
		key := v
		if width > 0 {
			key = v / width * width
			if v < 0 && v%width != 0 {
				key -= width
			}
		}
		g, ok := byKey[key]
		if !ok {
			g = &Group{Key: key, Min: math.MaxInt64, Max: math.MinInt64}
			byKey[key] = g
		}
		g.Rows++
		g.Sum += v
		if v < g.Min {
			g.Min = v
		}
		if v > g.Max {
			g.Max = v
		}
	}
}
