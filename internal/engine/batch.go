package engine

import (
	"sync"

	"amnesiadb/internal/bitvec"
	"amnesiadb/internal/column"
	"amnesiadb/internal/expr"
)

// BatchSize is the number of tuples a vectorized kernel processes per
// invocation. It matches column.DefaultBlockSize so one batch covers one
// zone-mapped block: small enough that the selection and value buffers
// stay cache-resident, large enough to amortise per-batch overhead.
const BatchSize = 1024

// Batch is the unit of vectorized execution: a selection vector of tuple
// positions and the parallel value vector filled by the column scan
// kernel. Operators consume the two slices directly; kernels compact
// them in place, so no per-tuple allocation happens anywhere between
// storage and operator output.
type Batch struct {
	// Sel holds tuple positions (the selection vector).
	Sel []int32
	// Val holds the attribute values parallel to Sel.
	Val []int64
}

// batchPool recycles batches across queries. Executors are shared by
// concurrent readers, so scratch space is pooled per scan rather than
// stored on the Exec.
var batchPool = sync.Pool{
	New: func() any {
		return &Batch{Sel: make([]int32, BatchSize), Val: make([]int64, BatchSize)}
	},
}

// GetBatch returns a full-size batch from the pool.
func GetBatch() *Batch { return batchPool.Get().(*Batch) }

// putHook, when non-nil, observes every pool return; tests use it to
// pin that teardown and error paths recycle their batches.
var putHook func(*Batch)

// PutBatch returns a batch obtained from GetBatch to the pool.
func PutBatch(b *Batch) {
	if putHook != nil {
		putHook(b)
	}
	b.Sel = b.Sel[:BatchSize]
	b.Val = b.Val[:BatchSize]
	batchPool.Put(b)
}

// scanBatches drives the batch pipeline for one predicate scan: the
// column kernel fills a pooled batch with rows inside the predicate's
// bounding interval, the vectorized filter removes bounds-inexact
// mismatches, and fn consumes each non-empty batch. The selection and
// value slices passed to fn are only valid during the call.
func (e *Exec) scanBatches(c *column.Int64, pred expr.Expr, mode ScanMode, fn func(sel []int32, val []int64)) {
	lo, hi, exact := pred.Bounds()
	var active *bitvec.Vector
	if mode == ScanActive {
		active = e.t.Active()
	}
	b := GetBatch()
	defer PutBatch(b)
	for pos := 0; pos < c.Len(); {
		var n int
		n, pos = c.ScanBatch(lo, hi, active, pos, b.Sel, b.Val)
		if n == 0 {
			continue
		}
		if !exact {
			n = expr.Filter(pred, b.Sel, b.Val, n)
		}
		if n > 0 {
			fn(b.Sel[:n], b.Val[:n])
		}
	}
}

// countMatches returns the number of rows satisfying pred under mode
// without materializing positions or values — the counting fast path
// behind COUNT(*) and both of Precision's passes. Large columns count
// morsel-parallel like every other scan.
func (e *Exec) countMatches(c *column.Int64, pred expr.Expr, mode ScanMode) int {
	var active *bitvec.Vector
	if mode == ScanActive {
		active = e.t.Active()
	}
	if w := e.workersFor(c.Len()); w > 1 {
		return e.countMatchesParallel(c, pred, active, w)
	}
	lo, hi, exact := pred.Bounds()
	if exact {
		return c.CountRange(lo, hi, active)
	}
	n := 0
	e.scanBatches(c, pred, mode, func(sel []int32, val []int64) { n += len(sel) })
	return n
}
