package engine

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"amnesiadb/internal/bitvec"
	"amnesiadb/internal/column"
	"amnesiadb/internal/engine/sched"
	"amnesiadb/internal/expr"
)

// MorselBlocks is the number of zone-mapped blocks one morsel covers.
// With the default 1024-row blocks a morsel is 64Ki rows — large enough
// that a worker amortises its scheduling atomics over many batches,
// small enough that workers finishing early keep stealing work from the
// shared counter until the column is drained.
const MorselBlocks = 64

// parallelMinRows is the auto-parallelism threshold: below it a scan
// runs serially, because goroutine startup and the merge would cost
// more than the scan itself. One morsel of default-size blocks.
const parallelMinRows = MorselBlocks * column.DefaultBlockSize

// SetParallelism sets the executor's intra-query parallelism: 0 (the
// default) picks GOMAXPROCS workers for scans of at least
// parallelMinRows rows and runs smaller scans serially; 1 forces every
// scan serial; n > 1 forces n workers regardless of table size.
// Configure before sharing the executor — the knob is plain state, not
// synchronized, so it must not change concurrently with queries.
func (e *Exec) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	e.par = n
}

// Parallelism returns the configured knob (0 = auto).
func (e *Exec) Parallelism() int { return e.par }

// SetScheduler routes the executor's parallel work through a shared
// worker pool: morsel steps are dispatched from the pool's per-query
// queues instead of spawning this executor's own goroutines, and a
// forced Parallelism(n) with n above the pool width is clamped to it.
// nil (the default) keeps the legacy spawn-per-query behaviour.
// Configure before sharing the executor, like SetParallelism.
func (e *Exec) SetScheduler(p *sched.Pool) { e.sched = p }

// Scheduler returns the configured pool, nil when unset.
func (e *Exec) Scheduler() *sched.Pool { return e.sched }

// workersFor resolves the knob to a worker count for a scan of rows
// tuples, clamped to the scheduler pool's width when one is set.
func (e *Exec) workersFor(rows int) int { return WorkersSched(e.sched, e.par, rows) }

// EffectiveWorkers reports the worker count a scan of rows tuples
// actually admits under the executor's knob and scheduler clamp; the
// bench CLI surfaces it next to the requested count.
func (e *Exec) EffectiveWorkers(rows int) int { return e.workersFor(rows) }

// shortScanRows is the priority-boost threshold: queries scanning at
// most this many tuples count as short for the shared pool's
// fair-share dispatch, so point lookups overtake long scans without
// starving them (the boost is burst-bounded in sched).
const shortScanRows = 8 * parallelMinRows

// shortScan classifies a scan of rows tuples for pool priority.
func shortScan(rows int) bool { return rows <= shortScanRows }

// Workers resolves a parallelism knob for a task over rows tuples:
// 1 forces serial, n > 1 forces n workers, 0 (auto) uses GOMAXPROCS
// past the one-morsel row threshold and stays serial below it. The
// join, the SQL sort and the benchmarks all share this one resolution
// so the knob means the same thing everywhere.
func Workers(par, rows int) int {
	switch {
	case par == 1:
		return 1
	case par > 1:
		return par
	default:
		if rows < parallelMinRows {
			return 1
		}
		return runtime.GOMAXPROCS(0)
	}
}

// WorkersSched is Workers with the shared-pool clamp: a forced
// Parallelism(n) with n above the pool width would oversubscribe the
// box the moment queries share one pool, so the resolved count never
// exceeds the pool size. A nil pool resolves exactly like Workers.
func WorkersSched(p *sched.Pool, par, rows int) int {
	w := Workers(par, rows)
	if p != nil && w > p.Size() {
		w = p.Size()
	}
	return w
}

// ForEachTask is the morsel scheduler generalised to any indexed task
// list: workers goroutines pull indices [0, n) from a shared atomic
// counter until none remain. Workers is clamped to n. fn must be safe
// for concurrent invocation with distinct indices. The partition
// layer's shard fan-out and SQL's run sort schedule through this.
func ForEachTask(workers, n int, fn func(i int)) {
	forEachMorsel(workers, n, func(_, i int) { fn(i) })
}

// ForEachTaskSched is ForEachTask dispatched through a shared pool
// when p is non-nil: the tasks become one pool query of the given
// width, scheduled fair-share against every other active query, and
// the calling goroutine drives its own steps while it waits.
func ForEachTaskSched(p *sched.Pool, workers, n int, fn func(i int)) {
	forEachMorselSched(p, workers, n, func(_, i int) { fn(i) })
}

// ForEachTaskCtx is ForEachTaskSched with cooperative cancellation:
// once ctx is done, workers stop claiming tasks (already-started tasks
// finish) and the call reports ctx's error, so a disconnected client's
// fan-out releases its cores within one task instead of running the
// barrier to completion. A nil ctx degrades to ForEachTaskSched.
// Callers must treat a non-nil return as "results incomplete".
func ForEachTaskCtx(ctx context.Context, p *sched.Pool, workers, n int, fn func(i int)) error {
	if ctx == nil {
		ForEachTaskSched(p, workers, n, fn)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	forEachMorselSched(p, workers, n, func(_, i int) {
		if ctx.Err() != nil {
			return
		}
		fn(i)
	})
	return ctx.Err()
}

// morselGeometry splits c into morsels of MorselBlocks blocks.
func morselGeometry(c *column.Int64) (rowsPerMorsel, numMorsels int) {
	rowsPerMorsel = MorselBlocks * c.BlockSize()
	numMorsels = (c.Len() + rowsPerMorsel - 1) / rowsPerMorsel
	return rowsPerMorsel, numMorsels
}

// forEachMorsel is the morsel scheduler: workers goroutines pull morsel
// indices [0, numMorsels) from a shared atomic counter until none
// remain, calling fn(worker, morsel) for each. Dynamic pulling is what
// makes the split morsel-driven rather than range-partitioned: a worker
// whose morsels were zone-pruned away immediately takes load off the
// others. fn must be safe for concurrent invocation with distinct
// morsel indices; worker indices are dense in [0, workers).
func forEachMorsel(workers, numMorsels int, fn func(worker, morsel int)) {
	if workers > numMorsels {
		workers = numMorsels
	}
	if workers <= 1 {
		for m := 0; m < numMorsels; m++ {
			fn(0, m)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= numMorsels {
					return
				}
				fn(w, m)
			}
		}(w)
	}
	wg.Wait()
}

// forEachMorselSched is forEachMorsel dispatched through a shared pool
// when p is non-nil (nil falls back to spawn-per-call). One pool query
// of the given width covers all morsels; steps run on arbitrary pool
// workers plus the calling goroutine, so the dense worker indices fn
// expects (per-worker partials) are leased from a slot channel — the
// pool caps concurrent steps at width, so a lease never blocks.
func forEachMorselSched(p *sched.Pool, workers, numMorsels int, fn func(worker, morsel int)) {
	if workers > numMorsels {
		workers = numMorsels
	}
	if p == nil || workers <= 1 {
		forEachMorsel(workers, numMorsels, fn)
		return
	}
	var next atomic.Int64
	slots := make(chan int, workers)
	for w := 0; w < workers; w++ {
		slots <- w
	}
	q := p.Attach(workers, numMorsels <= workers, func() sched.Status {
		m := int(next.Add(1)) - 1
		if m >= numMorsels {
			return sched.Done
		}
		w := <-slots
		fn(w, m)
		slots <- w
		return sched.Ran
	})
	q.Wait()
}

// forEachMorsel routes through the executor's scheduler when one is
// configured; the parallel operators all dispatch through this method
// so direct engine users and pool-backed facades share one code path.
func (e *Exec) forEachMorsel(workers, numMorsels int, fn func(worker, morsel int)) {
	forEachMorselSched(e.sched, workers, numMorsels, fn)
}

// scanMorselBatches runs the batch pipeline — range-bounded scan kernel,
// vectorized filter — over rows [start, end) with a worker-local pooled
// batch, handing each non-empty batch to fn. The slices passed to fn are
// only valid during the call.
func scanMorselBatches(c *column.Int64, lo, hi int64, exact bool, pred expr.Expr, active *bitvec.Vector, start, end int, fn func(sel []int32, val []int64)) {
	b := GetBatch()
	defer PutBatch(b)
	for pos := start; pos < end && pos < c.Len(); {
		var n int
		n, pos = c.ScanBatchRange(lo, hi, active, pos, end, b.Sel, b.Val)
		if n == 0 {
			continue
		}
		if !exact {
			n = expr.Filter(pred, b.Sel, b.Val, n)
		}
		if n > 0 {
			fn(b.Sel[:n], b.Val[:n])
		}
	}
}

// collectChunks runs the scan pipeline over rows [start, end) and
// returns the qualifying rows as a list of pooled batches, each
// truncated to its fill. The caller owns the batches (mergeChunks
// recycles or steals them). Both the serial Select and every parallel
// morsel use this one loop, so the two paths cannot drift apart.
func collectChunks(c *column.Int64, pred expr.Expr, active *bitvec.Vector, start, end int) []*Batch {
	lo, hi, exact := pred.Bounds()
	var out []*Batch
	for pos := start; pos < end && pos < c.Len(); {
		b := GetBatch()
		var n int
		n, pos = c.ScanBatchRange(lo, hi, active, pos, end, b.Sel, b.Val)
		if n > 0 && !exact {
			n = expr.Filter(pred, b.Sel, b.Val, n)
		}
		if n == 0 {
			PutBatch(b)
			continue
		}
		b.Sel, b.Val = b.Sel[:n], b.Val[:n]
		out = append(out, b)
	}
	return out
}

// aggregateParallel folds morsels into per-worker partial aggregates and
// merges them. Sums, counts and min/max are order-independent over
// int64, so the merged aggregate equals the serial one exactly. When the
// feedback loop needs the contributing rows, each morsel collects its
// positions into a per-morsel buffer and the merge concatenates them in
// morsel order — one ordered Rower, one TouchMany flush at the caller.
func (e *Exec) aggregateParallel(c *column.Int64, pred expr.Expr, active *bitvec.Vector, workers int, touching bool) *AggResult {
	lo, hi, exact := pred.Bounds()
	rowsPer, nm := morselGeometry(c)
	partials := make([]AggResult, workers)
	for i := range partials {
		partials[i].Min, partials[i].Max = math.MaxInt64, math.MinInt64
	}
	var rower [][]int32
	if touching {
		rower = make([][]int32, nm)
	}
	e.forEachMorsel(workers, nm, func(w, m int) {
		p := &partials[w]
		scanMorselBatches(c, lo, hi, exact, pred, active, m*rowsPer, (m+1)*rowsPer, func(sel []int32, val []int64) {
			if touching {
				rower[m] = append(rower[m], sel...)
			}
			p.Rows += len(val)
			for _, v := range val {
				p.Sum += v
				if v < p.Min {
					p.Min = v
				}
				if v > p.Max {
					p.Max = v
				}
			}
		})
	})
	agg := &AggResult{Min: math.MaxInt64, Max: math.MinInt64}
	for i := range partials {
		p := &partials[i]
		agg.Rows += p.Rows
		agg.Sum += p.Sum
		if p.Min < agg.Min {
			agg.Min = p.Min
		}
		if p.Max > agg.Max {
			agg.Max = p.Max
		}
	}
	if touching {
		total := 0
		for _, r := range rower {
			total += len(r)
		}
		if total > 0 {
			agg.Rower = make([]int32, 0, total)
			for _, r := range rower {
				agg.Rower = append(agg.Rower, r...)
			}
		}
	}
	return agg
}

// groupByParallel builds per-worker group tables and merges them; the
// caller sorts by key, so worker interleaving never shows. Touched
// positions are collected per morsel like aggregateParallel's Rower.
func (e *Exec) groupByParallel(c *column.Int64, pred expr.Expr, active *bitvec.Vector, width int64, workers int, touching bool) (map[int64]*Group, []int32) {
	lo, hi, exact := pred.Bounds()
	rowsPer, nm := morselGeometry(c)
	maps := make([]map[int64]*Group, workers)
	var touched [][]int32
	if touching {
		touched = make([][]int32, nm)
	}
	e.forEachMorsel(workers, nm, func(w, m int) {
		byKey := maps[w]
		if byKey == nil {
			byKey = make(map[int64]*Group)
			maps[w] = byKey
		}
		scanMorselBatches(c, lo, hi, exact, pred, active, m*rowsPer, (m+1)*rowsPer, func(sel []int32, val []int64) {
			if touching {
				touched[m] = append(touched[m], sel...)
			}
			foldGroups(byKey, val, width)
		})
	})
	merged := make(map[int64]*Group)
	for _, byKey := range maps {
		for key, g := range byKey {
			mg, ok := merged[key]
			if !ok {
				merged[key] = g
				continue
			}
			mg.Rows += g.Rows
			mg.Sum += g.Sum
			if g.Min < mg.Min {
				mg.Min = g.Min
			}
			if g.Max > mg.Max {
				mg.Max = g.Max
			}
		}
	}
	var flat []int32
	if touching {
		total := 0
		for _, t := range touched {
			total += len(t)
		}
		if total > 0 {
			flat = make([]int32, 0, total)
			for _, t := range touched {
				flat = append(flat, t...)
			}
		}
	}
	return merged, flat
}

// countMatchesParallel counts qualifying rows across morsels with
// per-morsel tallies summed at the end. Exact-bounds predicates use the
// pure counting kernel (no batch materialization at all); inexact ones
// run the filter pipeline and count survivors.
func (e *Exec) countMatchesParallel(c *column.Int64, pred expr.Expr, active *bitvec.Vector, workers int) int {
	lo, hi, exact := pred.Bounds()
	rowsPer, nm := morselGeometry(c)
	counts := make([]int, nm)
	e.forEachMorsel(workers, nm, func(_, m int) {
		start, end := m*rowsPer, (m+1)*rowsPer
		if exact {
			counts[m] = c.CountRangeIn(lo, hi, active, start, end)
			return
		}
		n := 0
		scanMorselBatches(c, lo, hi, exact, pred, active, start, end, func(sel []int32, _ []int64) { n += len(sel) })
		counts[m] = n
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}
