package column

import (
	"testing"
	"testing/quick"

	"amnesiadb/internal/bitvec"
	"amnesiadb/internal/xrand"
)

func fill(c *Int64, vs ...int64) {
	for _, v := range vs {
		c.Append(v)
	}
}

func TestAppendGetLen(t *testing.T) {
	c := NewWithBlockSize(4)
	fill(c, 5, 3, 9, 1, 7)
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	want := []int64{5, 3, 9, 1, 7}
	for i, w := range want {
		if got := c.Get(i); got != w {
			t.Fatalf("Get(%d) = %d, want %d", i, got, w)
		}
	}
	if c.Blocks() != 2 {
		t.Fatalf("Blocks = %d, want 2", c.Blocks())
	}
}

func TestZoneMapsTrackMinMax(t *testing.T) {
	c := NewWithBlockSize(3)
	fill(c, 5, 3, 9, 1, 7)
	if z := c.Zone(0); z.Min != 3 || z.Max != 9 {
		t.Fatalf("zone 0 = %+v", z)
	}
	if z := c.Zone(1); z.Min != 1 || z.Max != 7 {
		t.Fatalf("zone 1 = %+v", z)
	}
}

func TestGetPanics(t *testing.T) {
	c := New()
	fill(c, 1)
	for _, i := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", i)
				}
			}()
			c.Get(i)
		}()
	}
}

func TestScanRangeBasic(t *testing.T) {
	c := NewWithBlockSize(2)
	fill(c, 10, 20, 30, 40, 50)
	sel := c.ScanRange(20, 45, nil)
	want := []int32{1, 2, 3}
	if len(sel) != len(want) {
		t.Fatalf("sel = %v, want %v", sel, want)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("sel = %v, want %v", sel, want)
		}
	}
}

func TestScanRangeEmptyAndFull(t *testing.T) {
	c := NewWithBlockSize(4)
	fill(c, 1, 2, 3)
	if got := c.ScanRange(100, 200, nil); len(got) != 0 {
		t.Fatalf("empty scan returned %v", got)
	}
	if got := c.ScanRange(0, 100, nil); len(got) != 3 {
		t.Fatalf("full scan returned %v", got)
	}
}

func TestScanRangeActiveRespectsBitmap(t *testing.T) {
	c := NewWithBlockSize(2)
	fill(c, 10, 20, 30, 40)
	active := bitvec.NewSet(4)
	active.Clear(1)
	sel := c.ScanRangeActive(0, 100, active, nil)
	if len(sel) != 3 || sel[0] != 0 || sel[1] != 2 || sel[2] != 3 {
		t.Fatalf("sel = %v", sel)
	}
}

func TestScanMatchesNaive(t *testing.T) {
	src := xrand.New(3)
	c := NewWithBlockSize(16)
	const n = 1000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = src.Int63n(500)
		c.Append(vals[i])
	}
	active := bitvec.New(n)
	for i := 0; i < n; i++ {
		if src.Bool(0.7) {
			active.Set(i)
		}
	}
	for _, r := range [][2]int64{{0, 500}, {100, 200}, {499, 500}, {250, 250}} {
		lo, hi := r[0], r[1]
		var want []int32
		for i, v := range vals {
			if v >= lo && v < hi && active.Test(i) {
				want = append(want, int32(i))
			}
		}
		got := c.ScanRangeActive(lo, hi, active, nil)
		if len(got) != len(want) {
			t.Fatalf("range [%d,%d): got %d rows, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("range [%d,%d): row %d = %d, want %d", lo, hi, i, got[i], want[i])
			}
		}
		if cnt := c.CountRange(lo, hi, active); cnt != len(want) {
			t.Fatalf("CountRange [%d,%d) = %d, want %d", lo, hi, cnt, len(want))
		}
	}
}

func TestAggregateRange(t *testing.T) {
	c := NewWithBlockSize(2)
	fill(c, 10, 20, 30, 40, 50)
	count, sum, min, max, ok := c.AggregateRange(20, 50, nil)
	if !ok || count != 3 || sum != 90 || min != 20 || max != 40 {
		t.Fatalf("agg = (%d, %d, %d, %d, %v)", count, sum, min, max, ok)
	}
	_, _, _, _, ok = c.AggregateRange(1000, 2000, nil)
	if ok {
		t.Fatal("empty aggregate reported ok")
	}
}

func TestAggregateRangeActive(t *testing.T) {
	c := NewWithBlockSize(2)
	fill(c, 10, 20, 30)
	active := bitvec.New(3)
	active.Set(1)
	count, sum, min, max, ok := c.AggregateRange(0, 100, active)
	if !ok || count != 1 || sum != 20 || min != 20 || max != 20 {
		t.Fatalf("agg = (%d, %d, %d, %d, %v)", count, sum, min, max, ok)
	}
}

func TestMinMaxValue(t *testing.T) {
	c := NewWithBlockSize(2)
	if _, ok := c.MaxValue(); ok {
		t.Fatal("empty column reported a max")
	}
	fill(c, 7, 3, 11, 2)
	if v, ok := c.MaxValue(); !ok || v != 11 {
		t.Fatalf("MaxValue = %d, %v", v, ok)
	}
	if v, ok := c.MinValue(); !ok || v != 2 {
		t.Fatalf("MinValue = %d, %v", v, ok)
	}
}

func TestCompact(t *testing.T) {
	c := NewWithBlockSize(2)
	fill(c, 10, 20, 30, 40, 50)
	keep := bitvec.New(5)
	keep.Set(0)
	keep.Set(2)
	keep.Set(4)
	remap := c.Compact(keep)
	if c.Len() != 3 {
		t.Fatalf("post-compact Len = %d", c.Len())
	}
	wantVals := []int64{10, 30, 50}
	for i, w := range wantVals {
		if c.Get(i) != w {
			t.Fatalf("post-compact Get(%d) = %d, want %d", i, c.Get(i), w)
		}
	}
	wantMap := []int32{0, -1, 1, -1, 2}
	for i, w := range wantMap {
		if remap[i] != w {
			t.Fatalf("remap[%d] = %d, want %d", i, remap[i], w)
		}
	}
	// zone maps must be rebuilt consistently
	sel := c.ScanRange(30, 51, nil)
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 2 {
		t.Fatalf("post-compact scan = %v", sel)
	}
}

func TestBlockBoundaryExactness(t *testing.T) {
	// Values exactly at block-size boundaries must not be lost or doubled.
	c := NewWithBlockSize(4)
	for i := int64(0); i < 12; i++ {
		c.Append(i)
	}
	sel := c.ScanRange(3, 9, nil)
	if len(sel) != 6 {
		t.Fatalf("boundary scan returned %d rows: %v", len(sel), sel)
	}
	for i, want := range []int32{3, 4, 5, 6, 7, 8} {
		if sel[i] != want {
			t.Fatalf("boundary scan = %v", sel)
		}
	}
}

func TestPropertyScanEquivalentToFilter(t *testing.T) {
	f := func(raw []int16, loRaw, hiRaw int16) bool {
		c := NewWithBlockSize(8)
		for _, r := range raw {
			c.Append(int64(r))
		}
		lo, hi := int64(loRaw), int64(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := c.ScanRange(lo, hi, nil)
		j := 0
		for i, r := range raw {
			v := int64(r)
			if v >= lo && v < hi {
				if j >= len(got) || got[j] != int32(i) {
					return false
				}
				j++
			}
		}
		return j == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWithBlockSize(0) did not panic")
		}
	}()
	NewWithBlockSize(0)
}

func BenchmarkScanRange(b *testing.B) {
	src := xrand.New(1)
	c := New()
	for i := 0; i < 1<<20; i++ {
		c.Append(src.Int63n(1 << 20))
	}
	b.ResetTimer()
	var sel []int32
	for i := 0; i < b.N; i++ {
		sel = c.ScanRange(1000, 2000, sel[:0])
	}
}

func BenchmarkAppend(b *testing.B) {
	c := New()
	for i := 0; i < b.N; i++ {
		c.Append(int64(i))
	}
}

// TestAppendSliceBulkZoneMaps checks that the bulk append leaves data
// and zone maps identical to value-at-a-time appends, across block
// boundaries, partial tail blocks and repeated calls.
func TestAppendSliceBulkZoneMaps(t *testing.T) {
	src := xrand.New(3)
	bulk := NewWithBlockSize(16)
	serial := NewWithBlockSize(16)
	for _, n := range []int{1, 15, 16, 17, 100, 0, 33} {
		vs := make([]int64, n)
		for i := range vs {
			vs[i] = src.Int63n(1000) - 500
		}
		bulk.AppendSlice(vs)
		for _, v := range vs {
			serial.Append(v)
		}
	}
	if bulk.Len() != serial.Len() {
		t.Fatalf("bulk %d values, serial %d", bulk.Len(), serial.Len())
	}
	for i := 0; i < serial.Len(); i++ {
		if bulk.Get(i) != serial.Get(i) {
			t.Fatalf("value %d: bulk %d, serial %d", i, bulk.Get(i), serial.Get(i))
		}
	}
	if bulk.Blocks() != serial.Blocks() {
		t.Fatalf("bulk %d blocks, serial %d", bulk.Blocks(), serial.Blocks())
	}
	for b := 0; b < serial.Blocks(); b++ {
		if bulk.Zone(b) != serial.Zone(b) {
			t.Fatalf("zone %d: bulk %+v, serial %+v", b, bulk.Zone(b), serial.Zone(b))
		}
	}
}
