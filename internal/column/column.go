// Package column implements amnesiadb's columnar storage primitive: an
// append-only vector of int64 values divided into fixed-size blocks, each
// carrying a zone map (min/max) so that range scans can skip blocks that
// cannot contain matches. This is the skeleton of the paper's "columnar
// DBMS written in C" (§2.1) and the substrate for the Block-Range-Index
// discussion in §4.4.
package column

import (
	"fmt"
	"math"

	"amnesiadb/internal/bitvec"
)

// DefaultBlockSize is the number of values per block when a column is built
// with New. 1024 keeps a block comfortably inside L1 while giving zone maps
// enough granularity for the paper's DBSIZE=1000 experiments to exercise
// multi-block layouts at larger scales.
const DefaultBlockSize = 1024

// ZoneMap summarises one block for scan pruning.
type ZoneMap struct {
	Min, Max int64
}

// Contains reports whether the value interval [lo, hi) can intersect
// the block. A hi of math.MaxInt64 is treated as inclusive infinity —
// the expr.Bounds convention — since a half-open interval could never
// admit MaxInt64 itself.
func (z ZoneMap) Contains(lo, hi int64) bool {
	return z.Max >= lo && (z.Min < hi || hi == math.MaxInt64)
}

// Int64 is an append-only column of int64 values with per-block zone maps.
// The zero value is not usable; construct with New or NewWithBlockSize.
// Int64 is not safe for concurrent mutation.
type Int64 struct {
	data      []int64
	zones     []ZoneMap
	blockSize int
}

// New returns an empty column with DefaultBlockSize.
func New() *Int64 { return NewWithBlockSize(DefaultBlockSize) }

// NewWithBlockSize returns an empty column using the given block size.
// It panics if blockSize <= 0.
func NewWithBlockSize(blockSize int) *Int64 {
	if blockSize <= 0 {
		panic("column: block size must be positive")
	}
	return &Int64{blockSize: blockSize}
}

// Len returns the number of values stored.
func (c *Int64) Len() int { return len(c.data) }

// BlockSize returns the configured block size.
func (c *Int64) BlockSize() int { return c.blockSize }

// Blocks returns the number of (possibly partial) blocks.
func (c *Int64) Blocks() int {
	return (len(c.data) + c.blockSize - 1) / c.blockSize
}

// Zone returns the zone map of block b. It panics if b is out of range.
func (c *Int64) Zone(b int) ZoneMap {
	if b < 0 || b >= len(c.zones) {
		panic(fmt.Sprintf("column: zone %d out of range [0, %d)", b, len(c.zones)))
	}
	return c.zones[b]
}

// Append adds one value to the end of the column, updating the zone map of
// the tail block.
func (c *Int64) Append(v int64) {
	if len(c.data)%c.blockSize == 0 {
		c.zones = append(c.zones, ZoneMap{Min: math.MaxInt64, Max: math.MinInt64})
	}
	z := &c.zones[len(c.zones)-1]
	if v < z.Min {
		z.Min = v
	}
	if v > z.Max {
		z.Max = v
	}
	c.data = append(c.data, v)
}

// AppendSlice appends all values in vs with one data append and one
// zone-map update per touched block: the values land first, then each
// block's min/max is folded over its new rows in a tight slice loop —
// the columnar bulk write that pairs with the batch read kernels.
func (c *Int64) AppendSlice(vs []int64) {
	if len(vs) == 0 {
		return
	}
	start := len(c.data)
	c.data = append(c.data, vs...)
	for b := start / c.blockSize; b*c.blockSize < len(c.data); b++ {
		if b == len(c.zones) {
			c.zones = append(c.zones, ZoneMap{Min: math.MaxInt64, Max: math.MinInt64})
		}
		lo := b * c.blockSize
		if lo < start {
			lo = start
		}
		hi := (b + 1) * c.blockSize
		if hi > len(c.data) {
			hi = len(c.data)
		}
		z := &c.zones[b]
		for _, v := range c.data[lo:hi] {
			if v < z.Min {
				z.Min = v
			}
			if v > z.Max {
				z.Max = v
			}
		}
	}
}

// Get returns the value at row i. It panics if i is out of range.
func (c *Int64) Get(i int) int64 {
	if i < 0 || i >= len(c.data) {
		panic(fmt.Sprintf("column: row %d out of range [0, %d)", i, len(c.data)))
	}
	return c.data[i]
}

// Values returns the backing slice. The caller must treat it as read-only;
// mutating it would desynchronise the zone maps.
func (c *Int64) Values() []int64 { return c.data }

// ScanRange appends to sel the positions of all rows whose value v satisfies
// lo <= v < hi, using zone maps to skip non-intersecting blocks, and returns
// the extended slice.
func (c *Int64) ScanRange(lo, hi int64, sel []int32) []int32 {
	unbounded := hi == math.MaxInt64
	for b := 0; b < len(c.zones); b++ {
		if !c.zones[b].Contains(lo, hi) {
			continue
		}
		start := b * c.blockSize
		end := start + c.blockSize
		if end > len(c.data) {
			end = len(c.data)
		}
		for i := start; i < end; i++ {
			if v := c.data[i]; v >= lo && (v < hi || unbounded) {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel
}

// ScanRangeActive is ScanRange restricted to rows whose bit is set in
// active. active must be at least Len bits long.
func (c *Int64) ScanRangeActive(lo, hi int64, active *bitvec.Vector, sel []int32) []int32 {
	if active.Len() < len(c.data) {
		panic(fmt.Sprintf("column: active bitmap %d bits for %d rows", active.Len(), len(c.data)))
	}
	unbounded := hi == math.MaxInt64
	for b := 0; b < len(c.zones); b++ {
		if !c.zones[b].Contains(lo, hi) {
			continue
		}
		start := b * c.blockSize
		end := start + c.blockSize
		if end > len(c.data) {
			end = len(c.data)
		}
		for i := start; i < end; i++ {
			if v := c.data[i]; v >= lo && (v < hi || unbounded) && active.Test(i) {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel
}

// CountRange returns the number of rows with lo <= v < hi. If active is
// non-nil only rows with their bit set are counted (word-parallel, via
// the range-bounded counting kernel).
func (c *Int64) CountRange(lo, hi int64, active *bitvec.Vector) int {
	return c.CountRangeIn(lo, hi, active, 0, len(c.data))
}

// AggregateRange computes count, sum, min and max over rows with
// lo <= v < hi, honouring active when non-nil. When no row qualifies,
// ok is false and the other results are zero values.
func (c *Int64) AggregateRange(lo, hi int64, active *bitvec.Vector) (count int, sum, min, max int64, ok bool) {
	min, max = math.MaxInt64, math.MinInt64
	unbounded := hi == math.MaxInt64
	for b := 0; b < len(c.zones); b++ {
		if !c.zones[b].Contains(lo, hi) {
			continue
		}
		start := b * c.blockSize
		end := start + c.blockSize
		if end > len(c.data) {
			end = len(c.data)
		}
		for i := start; i < end; i++ {
			v := c.data[i]
			if v < lo || (v >= hi && !unbounded) {
				continue
			}
			if active != nil && !active.Test(i) {
				continue
			}
			count++
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if count == 0 {
		return 0, 0, 0, 0, false
	}
	return count, sum, min, max, true
}

// MaxValue returns the largest value stored so far and false when empty.
// It consults only zone maps, so it is O(blocks).
func (c *Int64) MaxValue() (int64, bool) {
	if len(c.data) == 0 {
		return 0, false
	}
	max := int64(math.MinInt64)
	for _, z := range c.zones {
		if z.Max > max {
			max = z.Max
		}
	}
	return max, true
}

// MinValue returns the smallest value stored so far and false when empty.
func (c *Int64) MinValue() (int64, bool) {
	if len(c.data) == 0 {
		return 0, false
	}
	min := int64(math.MaxInt64)
	for _, z := range c.zones {
		if z.Min < min {
			min = z.Min
		}
	}
	return min, true
}

// Compact rebuilds the column keeping only the rows whose bit is set in
// keep, preserving order, and returns a mapping from old row positions to
// new ones (-1 for dropped rows). This backs table vacuuming — the
// "physically remove" fate of forgotten data.
func (c *Int64) Compact(keep *bitvec.Vector) []int32 {
	if keep.Len() < len(c.data) {
		panic(fmt.Sprintf("column: keep bitmap %d bits for %d rows", keep.Len(), len(c.data)))
	}
	remap := make([]int32, len(c.data))
	nc := NewWithBlockSize(c.blockSize)
	for i, v := range c.data {
		if keep.Test(i) {
			remap[i] = int32(nc.Len())
			nc.Append(v)
		} else {
			remap[i] = -1
		}
	}
	c.data, c.zones = nc.data, nc.zones
	return remap
}
