package column

import (
	"fmt"
	"math"
	"math/bits"

	"amnesiadb/internal/bitvec"
)

// ScanBatch is the vectorized scan kernel: starting at row position start,
// it fills the caller-provided parallel buffers sel (positions) and val
// (values) with rows satisfying lo <= v < hi (hi == math.MaxInt64 means
// no upper bound, per the expr.Bounds convention) — restricted to rows whose
// bit is set in active when active is non-nil — until the buffers are
// full or the column is exhausted. It returns the number of rows
// produced and the position scanning should resume from (next == Len
// when the column is exhausted). Zone maps skip whole blocks; the kernel
// allocates nothing, so a tight caller loop reuses one batch for the
// entire scan.
//
// sel and val must have equal length; that length is the batch size.
func (c *Int64) ScanBatch(lo, hi int64, active *bitvec.Vector, start int, sel []int32, val []int64) (n, next int) {
	return c.ScanBatchRange(lo, hi, active, start, len(c.data), sel, val)
}

// ScanBatchRange is ScanBatch bounded to the row interval [start, end):
// the morsel-driven parallel scan hands each worker a contiguous run of
// blocks as [start, end) so workers share the column with no coordination
// beyond their disjoint ranges. end is clamped to Len. Active-restricted
// scans intersect each block's row range with the bitmap one 64-bit word
// at a time (bitvec.Word) and iterate only the set bits, so wholly
// forgotten spans cost one load instead of 64 Test calls.
func (c *Int64) ScanBatchRange(lo, hi int64, active *bitvec.Vector, start, end int, sel []int32, val []int64) (n, next int) {
	if len(sel) != len(val) {
		panic(fmt.Sprintf("column: ScanBatch buffers disagree: %d positions, %d values", len(sel), len(val)))
	}
	if active != nil && active.Len() < len(c.data) {
		panic(fmt.Sprintf("column: active bitmap %d bits for %d rows", active.Len(), len(c.data)))
	}
	if start < 0 {
		start = 0
	}
	if end > len(c.data) {
		end = len(c.data)
	}
	unbounded := hi == math.MaxInt64
	i := start
	for i < end && n < len(sel) {
		b := i / c.blockSize
		blockEnd := (b + 1) * c.blockSize
		if blockEnd > end {
			blockEnd = end
		}
		if !c.zones[b].Contains(lo, hi) {
			i = blockEnd
			continue
		}
		if active == nil {
			// The inner loop is the hot path: contiguous block rows,
			// bounds hoisted, no function calls.
			for ; i < blockEnd && n < len(sel); i++ {
				if v := c.data[i]; v >= lo && (v < hi || unbounded) {
					sel[n] = int32(i)
					val[n] = v
					n++
				}
			}
			continue
		}
		// Active path: visit one bitmap word per 64-row span, masked to
		// [i, blockEnd), and walk its set bits only.
		for i < blockEnd && n < len(sel) {
			wi := i >> 6
			w := active.Word(wi) & (^uint64(0) << (uint(i) & 63))
			spanEnd := (wi + 1) << 6
			if spanEnd > blockEnd {
				w &= (uint64(1) << uint(blockEnd-wi<<6)) - 1
				spanEnd = blockEnd
			}
			for w != 0 {
				if n == len(sel) {
					// Batch full mid-word: resume at the lowest set bit
					// still pending (clear rows in between match nothing).
					return n, wi<<6 + bits.TrailingZeros64(w)
				}
				r := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if v := c.data[r]; v >= lo && (v < hi || unbounded) {
					sel[n] = int32(r)
					val[n] = v
					n++
				}
			}
			i = spanEnd
		}
	}
	return n, i
}

// CountRangeIn returns the number of rows in the row interval [start, end)
// with lo <= v < hi, honouring active when non-nil. It is CountRange
// bounded to a morsel's block range, so parallel counting queries
// (COUNT(*), Precision ground truth) split a column the same way the
// materializing kernel does. end is clamped to Len.
func (c *Int64) CountRangeIn(lo, hi int64, active *bitvec.Vector, start, end int) int {
	if active != nil && active.Len() < len(c.data) {
		panic(fmt.Sprintf("column: active bitmap %d bits for %d rows", active.Len(), len(c.data)))
	}
	if start < 0 {
		start = 0
	}
	if end > len(c.data) {
		end = len(c.data)
	}
	unbounded := hi == math.MaxInt64
	n := 0
	for i := start; i < end; {
		b := i / c.blockSize
		blockEnd := (b + 1) * c.blockSize
		if blockEnd > end {
			blockEnd = end
		}
		if !c.zones[b].Contains(lo, hi) {
			i = blockEnd
			continue
		}
		if active == nil {
			for ; i < blockEnd; i++ {
				if v := c.data[i]; v >= lo && (v < hi || unbounded) {
					n++
				}
			}
			continue
		}
		for i < blockEnd {
			wi := i >> 6
			w := active.Word(wi) & (^uint64(0) << (uint(i) & 63))
			spanEnd := (wi + 1) << 6
			if spanEnd > blockEnd {
				w &= (uint64(1) << uint(blockEnd-wi<<6)) - 1
				spanEnd = blockEnd
			}
			for w != 0 {
				r := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if v := c.data[r]; v >= lo && (v < hi || unbounded) {
					n++
				}
			}
			i = spanEnd
		}
	}
	return n
}

// Gather fills out with the values at the given row positions and returns
// it, growing out only when its capacity is insufficient. It panics on an
// out-of-range position.
func (c *Int64) Gather(rows []int32, out []int64) []int64 {
	if cap(out) < len(rows) {
		out = make([]int64, len(rows))
	}
	out = out[:len(rows)]
	for i, r := range rows {
		if r < 0 || int(r) >= len(c.data) {
			panic(fmt.Sprintf("column: gather row %d out of range [0, %d)", r, len(c.data)))
		}
		out[i] = c.data[r]
	}
	return out
}
