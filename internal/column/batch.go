package column

import (
	"fmt"
	"math"

	"amnesiadb/internal/bitvec"
)

// ScanBatch is the vectorized scan kernel: starting at row position start,
// it fills the caller-provided parallel buffers sel (positions) and val
// (values) with rows satisfying lo <= v < hi (hi == math.MaxInt64 means
// no upper bound, per the expr.Bounds convention) — restricted to rows whose
// bit is set in active when active is non-nil — until the buffers are
// full or the column is exhausted. It returns the number of rows
// produced and the position scanning should resume from (next == Len
// when the column is exhausted). Zone maps skip whole blocks; the kernel
// allocates nothing, so a tight caller loop reuses one batch for the
// entire scan.
//
// sel and val must have equal length; that length is the batch size.
func (c *Int64) ScanBatch(lo, hi int64, active *bitvec.Vector, start int, sel []int32, val []int64) (n, next int) {
	if len(sel) != len(val) {
		panic(fmt.Sprintf("column: ScanBatch buffers disagree: %d positions, %d values", len(sel), len(val)))
	}
	if active != nil && active.Len() < len(c.data) {
		panic(fmt.Sprintf("column: active bitmap %d bits for %d rows", active.Len(), len(c.data)))
	}
	if start < 0 {
		start = 0
	}
	unbounded := hi == math.MaxInt64
	i := start
	for i < len(c.data) && n < len(sel) {
		b := i / c.blockSize
		blockEnd := (b + 1) * c.blockSize
		if blockEnd > len(c.data) {
			blockEnd = len(c.data)
		}
		if !c.zones[b].Contains(lo, hi) {
			i = blockEnd
			continue
		}
		// The inner loop is the hot path: contiguous block rows, bounds
		// hoisted, no function calls besides the bit test.
		if active == nil {
			for ; i < blockEnd && n < len(sel); i++ {
				if v := c.data[i]; v >= lo && (v < hi || unbounded) {
					sel[n] = int32(i)
					val[n] = v
					n++
				}
			}
		} else {
			for ; i < blockEnd && n < len(sel); i++ {
				if v := c.data[i]; v >= lo && (v < hi || unbounded) && active.Test(i) {
					sel[n] = int32(i)
					val[n] = v
					n++
				}
			}
		}
	}
	return n, i
}

// Gather fills out with the values at the given row positions and returns
// it, growing out only when its capacity is insufficient. It panics on an
// out-of-range position.
func (c *Int64) Gather(rows []int32, out []int64) []int64 {
	if cap(out) < len(rows) {
		out = make([]int64, len(rows))
	}
	out = out[:len(rows)]
	for i, r := range rows {
		if r < 0 || int(r) >= len(c.data) {
			panic(fmt.Sprintf("column: gather row %d out of range [0, %d)", r, len(c.data)))
		}
		out[i] = c.data[r]
	}
	return out
}
