package column

import (
	"testing"

	"amnesiadb/internal/bitvec"
	"amnesiadb/internal/xrand"
)

// buildColumn returns a column of n pseudo-random values over [0, domain)
// with the given block size, plus an active bitmap with roughly half the
// bits set.
func buildColumn(t *testing.T, n int, domain int64, blockSize int, seed uint64) (*Int64, *bitvec.Vector) {
	t.Helper()
	src := xrand.New(seed)
	c := NewWithBlockSize(blockSize)
	active := bitvec.New(n)
	for i := 0; i < n; i++ {
		c.Append(src.Int63n(domain))
		if src.Bool(0.5) {
			active.Set(i)
		}
	}
	return c, active
}

// TestScanBatchMatchesScanRange drives the batch kernel with deliberately
// small buffers across ragged block boundaries and checks that the
// concatenated batches reproduce the row-at-a-time ScanRange /
// ScanRangeActive output exactly.
func TestScanBatchMatchesScanRange(t *testing.T) {
	cases := []struct {
		name      string
		n         int
		domain    int64
		blockSize int
		batchSize int
		lo, hi    int64
		useActive bool
	}{
		{"single-partial-block", 10, 100, 16, 4, 20, 80, false},
		{"multi-block", 1000, 1000, 64, 7, 100, 900, false},
		{"block-aligned-batch", 512, 500, 64, 64, 0, 500, false},
		{"active-only", 1000, 1000, 64, 13, 100, 900, true},
		{"empty-range", 300, 100, 32, 8, 100, 100, false},
		{"everything", 300, 100, 32, 8, 0, 100, true},
		{"tiny-batch", 257, 50, 16, 1, 10, 40, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, active := buildColumn(t, tc.n, tc.domain, tc.blockSize, 7)
			var act *bitvec.Vector
			var want []int32
			if tc.useActive {
				act = active
				want = c.ScanRangeActive(tc.lo, tc.hi, active, nil)
			} else {
				want = c.ScanRange(tc.lo, tc.hi, nil)
			}

			sel := make([]int32, tc.batchSize)
			val := make([]int64, tc.batchSize)
			var gotSel []int32
			var gotVal []int64
			for pos := 0; pos < c.Len(); {
				var n int
				n, pos = c.ScanBatch(tc.lo, tc.hi, act, pos, sel, val)
				gotSel = append(gotSel, sel[:n]...)
				gotVal = append(gotVal, val[:n]...)
			}

			if len(gotSel) != len(want) {
				t.Fatalf("got %d rows, want %d", len(gotSel), len(want))
			}
			for i := range want {
				if gotSel[i] != want[i] {
					t.Fatalf("row %d: got position %d, want %d", i, gotSel[i], want[i])
				}
				if gotVal[i] != c.Get(int(want[i])) {
					t.Fatalf("row %d: got value %d, want %d", i, gotVal[i], c.Get(int(want[i])))
				}
			}
		})
	}
}

// TestScanBatchResume checks that next always lands on the position after
// the last produced row (or a block boundary for pruned blocks), so
// resuming never skips or duplicates.
func TestScanBatchResume(t *testing.T) {
	c := NewWithBlockSize(8)
	for i := 0; i < 40; i++ {
		c.Append(int64(i % 10))
	}
	sel := make([]int32, 3)
	val := make([]int64, 3)
	seen := map[int32]bool{}
	for pos := 0; pos < c.Len(); {
		var n int
		n, pos = c.ScanBatch(2, 8, nil, pos, sel, val)
		for _, r := range sel[:n] {
			if seen[r] {
				t.Fatalf("position %d produced twice", r)
			}
			seen[r] = true
		}
	}
	want := c.ScanRange(2, 8, nil)
	if len(seen) != len(want) {
		t.Fatalf("resumed scan produced %d rows, want %d", len(seen), len(want))
	}
}

// TestScanBatchZoneSkip verifies the kernel skips non-intersecting blocks
// without touching their rows: a batch bigger than the matching set must
// be filled in one call that jumped over the cold block.
func TestScanBatchZoneSkip(t *testing.T) {
	c := NewWithBlockSize(4)
	for _, v := range []int64{1, 2, 1, 2, 100, 100, 100, 100, 3, 1, 2, 3} {
		c.Append(v)
	}
	sel := make([]int32, 16)
	val := make([]int64, 16)
	n, next := c.ScanBatch(0, 10, nil, 0, sel, val)
	if next != c.Len() {
		t.Fatalf("next = %d, want %d", next, c.Len())
	}
	if n != 8 {
		t.Fatalf("matched %d rows, want 8", n)
	}
}

func TestScanBatchBufferMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched buffers")
		}
	}()
	c := New()
	c.Append(1)
	c.ScanBatch(0, 10, nil, 0, make([]int32, 4), make([]int64, 8))
}

func TestGather(t *testing.T) {
	c := New()
	for i := 0; i < 100; i++ {
		c.Append(int64(i * 3))
	}
	rows := []int32{0, 7, 99, 42}
	got := c.Gather(rows, nil)
	for i, r := range rows {
		if got[i] != int64(r)*3 {
			t.Fatalf("gather[%d] = %d, want %d", i, got[i], int64(r)*3)
		}
	}
	// Buffer reuse: a capacious buffer must be reused, not reallocated.
	buf := make([]int64, 0, 8)
	got = c.Gather(rows, buf)
	if &got[0] != &buf[:1][0] {
		t.Fatal("gather did not reuse the provided buffer")
	}
	// Out-of-range positions panic.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range gather")
		}
	}()
	c.Gather([]int32{1000}, nil)
}

// TestScanBatchRangePartition splits the row space into arbitrary
// disjoint ranges — morsel-style — and checks that per-range scans
// concatenate to exactly the full-column scan, for both active modes.
// This is the property the parallel engine's deterministic merge rests
// on.
func TestScanBatchRangePartition(t *testing.T) {
	c, active := buildColumn(t, 1000, 1000, 64, 11)
	for _, act := range []*bitvec.Vector{nil, active} {
		want := c.ScanRange(100, 900, nil)
		if act != nil {
			want = c.ScanRangeActive(100, 900, act, nil)
		}
		for _, cuts := range [][]int{
			{0, 1000},
			{0, 64, 128, 1000},       // block-aligned morsels
			{0, 100, 321, 700, 1000}, // unaligned, crossing words and blocks
			{0, 1, 2, 3, 1000},
		} {
			sel := make([]int32, 13)
			val := make([]int64, 13)
			var got []int32
			for i := 0; i+1 < len(cuts); i++ {
				for pos := cuts[i]; pos < cuts[i+1]; {
					var n int
					n, pos = c.ScanBatchRange(100, 900, act, pos, cuts[i+1], sel, val)
					got = append(got, sel[:n]...)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("cuts %v active=%v: got %d rows, want %d", cuts, act != nil, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cuts %v active=%v: row %d: got %d, want %d", cuts, act != nil, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCountRangeInPartition checks the counting kernel against
// CountRange over the same arbitrary row splits.
func TestCountRangeInPartition(t *testing.T) {
	c, active := buildColumn(t, 1000, 1000, 64, 13)
	for _, act := range []*bitvec.Vector{nil, active} {
		want := c.CountRange(200, 800, act)
		for _, cuts := range [][]int{{0, 1000}, {0, 64, 500, 1000}, {0, 7, 77, 777, 1000}} {
			got := 0
			for i := 0; i+1 < len(cuts); i++ {
				got += c.CountRangeIn(200, 800, act, cuts[i], cuts[i+1])
			}
			if got != want {
				t.Fatalf("cuts %v active=%v: counted %d, want %d", cuts, act != nil, got, want)
			}
		}
	}
}
