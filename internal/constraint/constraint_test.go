package constraint

import (
	"testing"

	"amnesiadb/internal/amnesia"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// pair builds parent keys 0..nKeys-1 and children referencing key i%nKeys.
func pair(t *testing.T, nKeys, nChildren int, action Action) (*table.Table, *table.Table, *ForeignKey) {
	t.Helper()
	parent := table.New("parent", "id")
	keys := make([]int64, nKeys)
	for i := range keys {
		keys[i] = int64(i)
	}
	if _, err := parent.AppendSingleColumn(keys); err != nil {
		t.Fatal(err)
	}
	child := table.New("child", "pid")
	refs := make([]int64, nChildren)
	for i := range refs {
		refs[i] = int64(i % nKeys)
	}
	if _, err := child.AppendSingleColumn(refs); err != nil {
		t.Fatal(err)
	}
	fk := &ForeignKey{Parent: parent, ParentCol: "id", Child: child, ChildCol: "pid", OnForget: action}
	if err := fk.Validate(); err != nil {
		t.Fatal(err)
	}
	return parent, child, fk
}

func TestValidateCatchesBadColumnsAndOrphans(t *testing.T) {
	parent := table.New("p", "id")
	child := table.New("c", "pid")
	if _, err := parent.AppendSingleColumn([]int64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := child.AppendSingleColumn([]int64{2}); err != nil {
		t.Fatal(err)
	}
	fk := &ForeignKey{Parent: parent, ParentCol: "zz", Child: child, ChildCol: "pid"}
	if err := fk.Validate(); err == nil {
		t.Fatal("bad parent column accepted")
	}
	fk = &ForeignKey{Parent: parent, ParentCol: "id", Child: child, ChildCol: "zz"}
	if err := fk.Validate(); err == nil {
		t.Fatal("bad child column accepted")
	}
	fk = &ForeignKey{Parent: parent, ParentCol: "id", Child: child, ChildCol: "pid"}
	if err := fk.Validate(); err == nil {
		t.Fatal("orphan child accepted")
	}
}

func TestCascadeForgetsOrphans(t *testing.T) {
	parent, child, fk := pair(t, 5, 20, Cascade)
	parent.Forget(2) // key 2 vanishes
	n := fk.Enforce()
	if n != 4 { // children 2, 7, 12, 17
		t.Fatalf("cascaded %d children, want 4", n)
	}
	cc := child.MustColumn("pid")
	for _, i := range child.ActiveIndices() {
		if cc.Get(i) == 2 {
			t.Fatal("active child still references forgotten key")
		}
	}
}

func TestRestrictRestoresReferencedKeys(t *testing.T) {
	parent, _, fk := pair(t, 5, 20, Restrict)
	parent.Forget(2)
	n := fk.Enforce()
	if n != 1 {
		t.Fatalf("restored %d, want 1", n)
	}
	if !parent.IsActive(2) {
		t.Fatal("referenced key not restored")
	}
}

func TestRestrictAllowsUnreferencedForgetting(t *testing.T) {
	// Key 4 has no children when children reference only 0..2.
	parent := table.New("parent", "id")
	if _, err := parent.AppendSingleColumn([]int64{0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	child := table.New("child", "pid")
	if _, err := child.AppendSingleColumn([]int64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	fk := &ForeignKey{Parent: parent, ParentCol: "id", Child: child, ChildCol: "pid", OnForget: Restrict}
	parent.Forget(4)
	if n := fk.Enforce(); n != 0 {
		t.Fatalf("restored %d unreferenced keys", n)
	}
	if parent.IsActive(4) {
		t.Fatal("unreferenced key resurrected")
	}
}

func TestGuardCascadeMeetsBudget(t *testing.T) {
	parent, child, fk := pair(t, 100, 400, Cascade)
	g := NewGuard(amnesia.NewUniform(xrand.New(1)), fk)
	got := g.Forget(parent, 30)
	if got != 30 {
		t.Fatalf("guard forgot %d, want 30", got)
	}
	if parent.ActiveCount() != 70 {
		t.Fatalf("parent active = %d", parent.ActiveCount())
	}
	if g.Cascaded != 120 { // 4 children per forgotten key
		t.Fatalf("cascaded %d children, want 120", g.Cascaded)
	}
	// No orphans remain.
	if err := fk.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = child
}

func TestGuardRestrictMeetsBudgetWhenPossible(t *testing.T) {
	// 100 keys, children reference only keys 0..9: 90 keys are free to
	// forget, so a budget of 50 is satisfiable.
	parent := table.New("parent", "id")
	keys := make([]int64, 100)
	for i := range keys {
		keys[i] = int64(i)
	}
	if _, err := parent.AppendSingleColumn(keys); err != nil {
		t.Fatal(err)
	}
	child := table.New("child", "pid")
	refs := make([]int64, 50)
	for i := range refs {
		refs[i] = int64(i % 10)
	}
	if _, err := child.AppendSingleColumn(refs); err != nil {
		t.Fatal(err)
	}
	fk := &ForeignKey{Parent: parent, ParentCol: "id", Child: child, ChildCol: "pid", OnForget: Restrict}
	g := NewGuard(amnesia.NewUniform(xrand.New(2)), fk)
	g.Forget(parent, 50)
	if parent.ActiveCount() != 50 {
		t.Fatalf("parent active = %d, want 50", parent.ActiveCount())
	}
	// All 10 referenced keys must have survived.
	pc := parent.MustColumn("id")
	alive := map[int64]bool{}
	for _, i := range parent.ActiveIndices() {
		alive[pc.Get(i)] = true
	}
	for k := int64(0); k < 10; k++ {
		if !alive[k] {
			t.Fatalf("referenced key %d was forgotten", k)
		}
	}
}

func TestGuardRestrictStopsWhenEverythingReferenced(t *testing.T) {
	// Every key referenced: the guard cannot meet the budget and must
	// terminate with the parent intact.
	parent, _, fk := pair(t, 10, 10, Restrict)
	g := NewGuard(amnesia.NewUniform(xrand.New(3)), fk)
	g.Forget(parent, 5)
	if parent.ActiveCount() != 10 {
		t.Fatalf("restrict-blocked guard left active = %d, want 10", parent.ActiveCount())
	}
	if g.Restored == 0 {
		t.Fatal("no restores recorded")
	}
}

func TestGuardName(t *testing.T) {
	_, _, fk := pair(t, 2, 2, Cascade)
	g := NewGuard(amnesia.NewFIFO(), fk)
	if g.Name() != "fifo+cascade" {
		t.Fatalf("name = %q", g.Name())
	}
}

func TestGuardPanics(t *testing.T) {
	parent, _, fk := pair(t, 2, 2, Cascade)
	other := table.New("other", "x")
	g := NewGuard(amnesia.NewFIFO(), fk)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("foreign table accepted")
			}
		}()
		g.Forget(other, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil inner accepted")
			}
		}()
		NewGuard(nil, fk)
	}()
	_ = parent
}
