// Package constraint answers §5's open question: "Semantic database
// integrity creates another challenge for amnesia strategies. ... Should
// forgetting a key value be forbidden unless it is not referenced any
// more? Or should we cascade by forgetting all related tuples?"
//
// A ForeignKey links a child table's column to a parent table's key
// column and enforces one of the two semantics the paper poses: Restrict
// (a referenced key cannot be forgotten) or Cascade (forgetting a key
// also forgets every referencing child tuple). A Guard wraps any amnesia
// strategy so its choices respect the constraint.
package constraint

import (
	"fmt"

	"amnesiadb/internal/amnesia"
	"amnesiadb/internal/table"
)

// Action selects the forget semantics of a foreign key.
type Action int

const (
	// Restrict forbids forgetting a parent key that is still referenced
	// by at least one active child tuple.
	Restrict Action = iota
	// Cascade forgets all active child tuples referencing a forgotten
	// parent key.
	Cascade
)

// String names the action.
func (a Action) String() string {
	if a == Cascade {
		return "cascade"
	}
	return "restrict"
}

// ForeignKey declares child.childCol references parent.parentCol.
type ForeignKey struct {
	Parent    *table.Table
	ParentCol string
	Child     *table.Table
	ChildCol  string
	OnForget  Action
}

// Validate checks the declaration (columns exist) and, for data already
// loaded, referential integrity of the active tuples.
func (fk *ForeignKey) Validate() error {
	if _, err := fk.Parent.Column(fk.ParentCol); err != nil {
		return fmt.Errorf("constraint: parent: %w", err)
	}
	if _, err := fk.Child.Column(fk.ChildCol); err != nil {
		return fmt.Errorf("constraint: child: %w", err)
	}
	keys := fk.activeParentKeys()
	cc := fk.Child.MustColumn(fk.ChildCol)
	for _, i := range fk.Child.ActiveIndices() {
		if !keys[cc.Get(i)] {
			return fmt.Errorf("constraint: child tuple %d references missing key %d", i, cc.Get(i))
		}
	}
	return nil
}

// activeParentKeys returns the set of key values with at least one active
// parent tuple.
func (fk *ForeignKey) activeParentKeys() map[int64]bool {
	pc := fk.Parent.MustColumn(fk.ParentCol)
	keys := make(map[int64]bool)
	for _, i := range fk.Parent.ActiveIndices() {
		keys[pc.Get(i)] = true
	}
	return keys
}

// referencedKeys returns the set of key values referenced by active child
// tuples.
func (fk *ForeignKey) referencedKeys() map[int64]bool {
	cc := fk.Child.MustColumn(fk.ChildCol)
	keys := make(map[int64]bool)
	for _, i := range fk.Child.ActiveIndices() {
		keys[cc.Get(i)] = true
	}
	return keys
}

// Enforce repairs the constraint after the parent table has forgotten
// tuples. Under Cascade it forgets orphaned child tuples and returns how
// many. Under Restrict it *re-remembers* parent tuples whose keys are
// still referenced (the "forbidden unless not referenced" semantics) and
// returns how many were restored.
func (fk *ForeignKey) Enforce() int {
	switch fk.OnForget {
	case Cascade:
		keys := fk.activeParentKeys()
		cc := fk.Child.MustColumn(fk.ChildCol)
		n := 0
		for _, i := range fk.Child.ActiveIndices() {
			if !keys[cc.Get(i)] {
				fk.Child.Forget(i)
				n++
			}
		}
		return n
	case Restrict:
		referenced := fk.referencedKeys()
		active := fk.activeParentKeys()
		pc := fk.Parent.MustColumn(fk.ParentCol)
		n := 0
		for _, i := range fk.Parent.ForgottenIndices() {
			k := pc.Get(i)
			if referenced[k] && !active[k] {
				fk.Parent.Remember(i)
				active[k] = true
				n++
			}
		}
		return n
	default:
		panic(fmt.Sprintf("constraint: invalid action %d", int(fk.OnForget)))
	}
}

// Guard wraps an amnesia strategy so every Forget call on the parent
// table is followed by constraint enforcement. Under Restrict the guard
// retries with additional forgetting of unreferenced tuples so the budget
// is still met whenever enough unreferenced tuples exist.
type Guard struct {
	inner amnesia.Strategy
	fk    *ForeignKey
	// Cascaded accumulates child tuples forgotten by cascades.
	Cascaded int
	// Restored accumulates parent tuples saved by restricts.
	Restored int
}

// NewGuard wraps inner with fk's semantics.
func NewGuard(inner amnesia.Strategy, fk *ForeignKey) *Guard {
	if inner == nil || fk == nil {
		panic("constraint: NewGuard with nil argument")
	}
	return &Guard{inner: inner, fk: fk}
}

// Name implements amnesia.Strategy.
func (g *Guard) Name() string { return g.inner.Name() + "+" + g.fk.OnForget.String() }

// Forget implements amnesia.Strategy against the parent table. The t
// argument must be the foreign key's parent table.
func (g *Guard) Forget(t *table.Table, n int) int {
	if t != g.fk.Parent {
		panic("constraint: Guard.Forget called with a table other than the parent")
	}
	target := t.ActiveCount() - n
	if target < 0 {
		target = 0
	}
	forgotten := 0
	// Under Restrict, enforcement resurrects referenced keys, so iterate:
	// each round forgets the remaining overage; strictly decreasing
	// overage guarantees termination, and a round that makes no progress
	// means every remaining active tuple is referenced — stop there.
	for attempt := 0; attempt < 64; attempt++ {
		over := t.ActiveCount() - target
		if over <= 0 {
			break
		}
		forgotten += g.inner.Forget(t, over)
		fixed := g.fk.Enforce()
		switch g.fk.OnForget {
		case Cascade:
			g.Cascaded += fixed
			return forgotten // cascade never reactivates; done in one round
		case Restrict:
			g.Restored += fixed
			if fixed >= over {
				// No net progress: the active set is fully referenced.
				return forgotten - fixed
			}
		}
	}
	return t.Len() - t.ActiveCount() // net effect on the parent
}
