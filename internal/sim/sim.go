// Package sim is the Data Amnesia Simulator of §2: it drives a columnar
// table through the paper's query-dominant loop — a batch of queries, a
// batch of inserts, then an amnesia step that restores the storage budget
// — while collecting the precision metrics and amnesia maps of the
// evaluation section.
package sim

import (
	"fmt"
	"math"

	"amnesiadb/internal/amnesia"
	"amnesiadb/internal/dist"
	"amnesiadb/internal/engine"
	"amnesiadb/internal/metrics"
	"amnesiadb/internal/table"
	"amnesiadb/internal/workload"
	"amnesiadb/internal/xrand"
)

// QueryKind selects the workload fired at each batch boundary.
type QueryKind int

const (
	// RangeQueries fires the Figure 3 range template.
	RangeQueries QueryKind = iota
	// AggQueries fires SELECT AVG(a) FROM t (§4.3).
	AggQueries
	// AggRangeQueries fires AVG with a range predicate (§4.3's "daily
	// life" variant).
	AggRangeQueries
)

// String names the workload kind.
func (k QueryKind) String() string {
	switch k {
	case RangeQueries:
		return "range"
	case AggQueries:
		return "avg"
	case AggRangeQueries:
		return "avg-range"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
}

// Config parameterises one simulation run. The zero value is not valid;
// use DefaultConfig as the base.
type Config struct {
	// DBSize is the constant active-tuple budget (paper: dbsize=1000).
	DBSize int
	// UpdatePerc is the per-batch volatility: each update batch inserts
	// UpdatePerc*DBSize fresh tuples and the strategy must forget as
	// many (paper: upd-perc 0.20 for the maps, 0.80 for Figure 3).
	UpdatePerc float64
	// Batches is the number of update batches after the initial load.
	Batches int
	// QueriesPerBatch is the size of each query batch (paper: 1000).
	QueriesPerBatch int
	// Distribution generates attribute values.
	Distribution dist.Kind
	// Domain is the exclusive upper bound of generated values.
	Domain int64
	// Strategy names the amnesia algorithm (see amnesia.Names).
	Strategy string
	// Queries selects the workload template.
	Queries QueryKind
	// Selectivity overrides the range window width when > 0.
	Selectivity float64
	// Candidates selects where range-query centre values come from
	// (default: the paper's active-tuple sampling).
	Candidates workload.CandidateMode
	// Seed makes the run reproducible.
	Seed uint64
}

// DefaultConfig returns the paper's base parameters: dbsize 1000, 10
// batches, 1000 queries per batch, uniform data over a domain of 100k.
func DefaultConfig() Config {
	return Config{
		DBSize:          1000,
		UpdatePerc:      0.20,
		Batches:         10,
		QueriesPerBatch: 1000,
		Distribution:    dist.Uniform,
		Domain:          100000,
		Strategy:        "uniform",
		Queries:         RangeQueries,
		Seed:            1,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.DBSize <= 0:
		return fmt.Errorf("sim: DBSize %d must be positive", c.DBSize)
	case c.UpdatePerc <= 0 || c.UpdatePerc > 1:
		return fmt.Errorf("sim: UpdatePerc %v outside (0, 1]", c.UpdatePerc)
	case c.Batches < 0:
		return fmt.Errorf("sim: Batches %d negative", c.Batches)
	case c.QueriesPerBatch < 0:
		return fmt.Errorf("sim: QueriesPerBatch %d negative", c.QueriesPerBatch)
	case c.Domain <= 0:
		return fmt.Errorf("sim: Domain %d must be positive", c.Domain)
	case c.Selectivity < 0 || c.Selectivity > 1:
		return fmt.Errorf("sim: Selectivity %v outside [0, 1]", c.Selectivity)
	}
	return nil
}

// Result carries everything a run produced.
type Result struct {
	Config Config
	// Series holds per-batch precision metrics (batch index 1..Batches;
	// queries are fired before each amnesia step, matching §2.3).
	Series metrics.Series
	// MapActive[b] / MapTotal[b] give the amnesia map of Figures 1-2:
	// how many tuples of insertion batch b (0 = initial load) are still
	// active at the end of the run.
	MapActive []int
	MapTotal  []int
	// Final table statistics.
	Stats table.Stats
}

// ActivePercent returns the amnesia-map y-axis: the percentage of each
// insertion batch still active at the end of the run.
func (r *Result) ActivePercent() []float64 {
	out := make([]float64, len(r.MapActive))
	for i := range out {
		if r.MapTotal[i] > 0 {
			out[i] = 100 * float64(r.MapActive[i]) / float64(r.MapTotal[i])
		}
	}
	return out
}

// Runner executes simulation runs. It holds no cross-run state.
type Runner struct{}

// Run executes one simulation described by cfg.
func (Runner) Run(cfg Config) (*Result, error) {
	return Run(cfg)
}

// Run executes one simulation described by cfg and returns its metrics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(cfg.Seed)
	dataSrc := root.Split()
	strategySrc := root.Split()
	querySrc := root.Split()

	const col = "a"
	tb := table.New("t", col)
	gen := dist.NewGenerator(cfg.Distribution, cfg.Domain, dataSrc)
	strat, err := amnesia.New(cfg.Strategy, col, strategySrc)
	if err != nil {
		return nil, err
	}
	ex := engine.New(tb)

	rangeGen := workload.NewRangeGen(querySrc, col)
	rangeGen.Candidates = cfg.Candidates
	if cfg.Selectivity > 0 {
		rangeGen.Selectivity = cfg.Selectivity
	}
	aggGen := workload.NewAggGen(querySrc, col, cfg.Queries == AggRangeQueries)
	aggGen.RangeGen().Candidates = cfg.Candidates
	if cfg.Selectivity > 0 {
		aggGen.RangeGen().Selectivity = cfg.Selectivity
	}

	// Initial load: the database starts full at DBSIZE (timeline point 0).
	if _, err := tb.AppendSingleColumn(gen.Batch(nil, cfg.DBSize)); err != nil {
		return nil, err
	}

	res := &Result{Config: cfg, Series: metrics.Series{Name: cfg.Strategy}}
	updateSize := int(cfg.UpdatePerc * float64(cfg.DBSize))
	if updateSize < 1 {
		updateSize = 1
	}

	for b := 1; b <= cfg.Batches; b++ {
		// 1. Query batch (feeds access frequencies and metrics).
		if cfg.QueriesPerBatch > 0 {
			var batch *metrics.Batch
			switch cfg.Queries {
			case RangeQueries:
				batch, err = workload.RunRangeBatch(ex, rangeGen, cfg.QueriesPerBatch)
			case AggQueries, AggRangeQueries:
				batch, err = workload.RunAggBatch(ex, aggGen, cfg.QueriesPerBatch)
			default:
				err = fmt.Errorf("sim: invalid query kind %d", int(cfg.Queries))
			}
			if err != nil {
				return nil, err
			}
			res.Series.Add(b, batch)
		}

		// 2. Update batch: insert F fresh tuples.
		if _, err := tb.AppendSingleColumn(gen.Batch(nil, updateSize)); err != nil {
			return nil, err
		}

		// 3. Amnesia: restore the storage budget exactly.
		over := tb.ActiveCount() - cfg.DBSize
		if over > 0 {
			strat.Forget(tb, over)
		}
		if got := tb.ActiveCount(); got != cfg.DBSize {
			return nil, fmt.Errorf("sim: budget invariant broken after batch %d: active %d != dbsize %d", b, got, cfg.DBSize)
		}
	}

	if err := res.Series.Validate(); err != nil {
		return nil, err
	}
	res.MapActive, res.MapTotal = tb.ActivePerBatch()
	res.Stats = tb.Stats()
	return res, nil
}

// RunAll executes the same configuration once per strategy name, returning
// results in the given order. It is the engine behind the multi-line
// figures.
func RunAll(cfg Config, strategies []string) ([]*Result, error) {
	out := make([]*Result, 0, len(strategies))
	for _, s := range strategies {
		c := cfg
		c.Strategy = s
		r, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("sim: strategy %s: %w", s, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// SeedStats aggregates one configuration over multiple seeds: per batch,
// the mean and sample standard deviation of precision. A single seed per
// figure is the paper's practice; multi-seed runs put honest error bars
// on the reproduction.
type SeedStats struct {
	Config  Config
	Seeds   int
	Batches []int
	Mean    []float64
	StdDev  []float64
}

// RunSeeds executes cfg with seeds cfg.Seed, cfg.Seed+1, ...,
// cfg.Seed+n-1 and aggregates the precision series. It requires n >= 1
// and a workload (QueriesPerBatch > 0).
func RunSeeds(cfg Config, n int) (*SeedStats, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: RunSeeds needs at least one seed, got %d", n)
	}
	if cfg.QueriesPerBatch == 0 {
		return nil, fmt.Errorf("sim: RunSeeds needs a query workload")
	}
	var sum, sumSq []float64
	st := &SeedStats{Config: cfg, Seeds: n}
	for s := 0; s < n; s++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(s)
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		ps := r.Series.Precisions()
		if sum == nil {
			sum = make([]float64, len(ps))
			sumSq = make([]float64, len(ps))
			for _, p := range r.Series.Points {
				st.Batches = append(st.Batches, p.Batch)
			}
		}
		for i, p := range ps {
			sum[i] += p
			sumSq[i] += p * p
		}
	}
	st.Mean = make([]float64, len(sum))
	st.StdDev = make([]float64, len(sum))
	for i := range sum {
		m := sum[i] / float64(n)
		st.Mean[i] = m
		if n > 1 {
			variance := (sumSq[i] - float64(n)*m*m) / float64(n-1)
			if variance < 0 {
				variance = 0
			}
			st.StdDev[i] = math.Sqrt(variance)
		}
	}
	return st, nil
}
