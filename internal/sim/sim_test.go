package sim

import (
	"strings"
	"testing"

	"amnesiadb/internal/amnesia"
	"amnesiadb/internal/dist"
	"amnesiadb/internal/workload"
)

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.QueriesPerBatch = 50
	return cfg
}

func TestValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.DBSize = 0 },
		func(c *Config) { c.UpdatePerc = 0 },
		func(c *Config) { c.UpdatePerc = 1.5 },
		func(c *Config) { c.Batches = -1 },
		func(c *Config) { c.QueriesPerBatch = -1 },
		func(c *Config) { c.Domain = 0 },
		func(c *Config) { c.Selectivity = -0.1 },
	}
	for i, mutate := range bads {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d validated", i)
		}
	}
}

func TestRunBudgetInvariant(t *testing.T) {
	for _, s := range amnesia.Names() {
		cfg := fastConfig()
		cfg.Strategy = s
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Stats.Active != cfg.DBSize {
			t.Fatalf("%s: final active %d != dbsize %d", s, res.Stats.Active, cfg.DBSize)
		}
		wantTotal := cfg.DBSize + cfg.Batches*int(cfg.UpdatePerc*float64(cfg.DBSize))
		if res.Stats.Tuples != wantTotal {
			t.Fatalf("%s: stored %d tuples, want %d", s, res.Stats.Tuples, wantTotal)
		}
	}
}

func TestRunSeriesShape(t *testing.T) {
	cfg := fastConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Points) != cfg.Batches {
		t.Fatalf("series has %d points, want %d", len(res.Series.Points), cfg.Batches)
	}
	if err := res.Series.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := fastConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series.Points {
		if a.Series.Points[i] != b.Series.Points[i] {
			t.Fatalf("batch %d diverged: %+v vs %+v", i, a.Series.Points[i], b.Series.Points[i])
		}
	}
	for i := range a.MapActive {
		if a.MapActive[i] != b.MapActive[i] {
			t.Fatalf("map diverged at %d", i)
		}
	}
}

func TestRunSeedChangesOutcome(t *testing.T) {
	cfg := fastConfig()
	a, _ := Run(cfg)
	cfg.Seed = 999
	b, _ := Run(cfg)
	same := true
	for i := range a.MapActive {
		if a.MapActive[i] != b.MapActive[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical amnesia maps")
	}
}

func TestAmnesiaMapFIFOShape(t *testing.T) {
	// FIFO keeps only the newest tuples: early batches fully dark, the
	// final stretch fully bright.
	cfg := fastConfig()
	cfg.Strategy = "fifo"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pct := res.ActivePercent()
	if pct[0] != 0 {
		t.Fatalf("fifo: initial batch %f%% active, want 0", pct[0])
	}
	if last := pct[len(pct)-1]; last != 100 {
		t.Fatalf("fifo: newest batch %f%% active, want 100", last)
	}
}

func TestAmnesiaMapAnteShape(t *testing.T) {
	// Anterograde protects history: batch 0 bright, updates dark.
	cfg := fastConfig()
	cfg.Strategy = "ante"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pct := res.ActivePercent()
	mid := 0.0
	for _, p := range pct[1 : len(pct)-1] {
		mid += p
	}
	mid /= float64(len(pct) - 2)
	if pct[0] < 80 {
		t.Fatalf("ante: initial batch only %.1f%% active", pct[0])
	}
	if mid > pct[0]/2 {
		t.Fatalf("ante: update batches too bright (%.1f%% vs initial %.1f%%)", mid, pct[0])
	}
}

func TestAmnesiaMapUniformMonotoneTrend(t *testing.T) {
	// Uniform amnesia: newer batches had fewer forgetting opportunities,
	// so activity should trend upward along the timeline.
	cfg := fastConfig()
	cfg.Strategy = "uniform"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pct := res.ActivePercent()
	first, last := pct[0], pct[len(pct)-1]
	if last <= first {
		t.Fatalf("uniform map not brightening: first %.1f%%, last %.1f%%", first, last)
	}
}

func TestQueryKindsRun(t *testing.T) {
	for _, k := range []QueryKind{RangeQueries, AggQueries, AggRangeQueries} {
		cfg := fastConfig()
		cfg.Queries = k
		cfg.QueriesPerBatch = 20
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
	}
}

func TestQueryKindStrings(t *testing.T) {
	if RangeQueries.String() != "range" || AggQueries.String() != "avg" ||
		AggRangeQueries.String() != "avg-range" {
		t.Fatal("QueryKind strings wrong")
	}
	if !strings.HasPrefix(QueryKind(42).String(), "QueryKind(") {
		t.Fatal("unknown kind string wrong")
	}
}

func TestRunAllOrders(t *testing.T) {
	cfg := fastConfig()
	cfg.QueriesPerBatch = 10
	names := []string{"fifo", "uniform"}
	out, err := RunAll(cfg, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Series.Name != "fifo" || out[1].Series.Name != "uniform" {
		t.Fatalf("RunAll order wrong")
	}
}

func TestRunAllUnknownStrategy(t *testing.T) {
	if _, err := RunAll(fastConfig(), []string{"nope"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestAllDistributionsRun(t *testing.T) {
	for _, d := range dist.Kinds {
		cfg := fastConfig()
		cfg.Distribution = d
		cfg.Strategy = "rot"
		cfg.QueriesPerBatch = 30
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
	}
}

func TestPrecisionDecaysOverTime(t *testing.T) {
	// The headline observation of §4.2: precision drops as more is
	// forgotten. Check first-batch precision >= last-batch precision for
	// the uniform baseline under high volatility.
	cfg := fastConfig()
	cfg.UpdatePerc = 0.8
	cfg.Strategy = "uniform"
	cfg.QueriesPerBatch = 200
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Series.Precisions()
	if ps[0] < ps[len(ps)-1] {
		t.Fatalf("precision rose over time: %v", ps)
	}
	if ps[len(ps)-1] > 0.8 {
		t.Fatalf("final precision %v implausibly high at 80%% volatility", ps[len(ps)-1])
	}
}

func TestCandidateModesChangeWorkload(t *testing.T) {
	// Under zipfian data with the areav strategy, active-candidate
	// queries avoid the value holes while uniform candidates do not, so
	// the measured precision must differ meaningfully between modes.
	run := func(m workload.CandidateMode) float64 {
		cfg := fastConfig()
		cfg.Distribution = dist.Zipf
		cfg.Strategy = "areav"
		cfg.UpdatePerc = 0.8
		cfg.QueriesPerBatch = 200
		cfg.Candidates = m
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ps := res.Series.Precisions()
		return ps[len(ps)-1]
	}
	active := run(workload.CandidateActive)
	uniform := run(workload.CandidateUniform)
	if active <= uniform {
		t.Fatalf("active-candidate precision %v not above uniform %v under areav", active, uniform)
	}
}

func TestRunSeedsStats(t *testing.T) {
	cfg := fastConfig()
	cfg.QueriesPerBatch = 100
	st, err := RunSeeds(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seeds != 5 || len(st.Mean) != cfg.Batches || len(st.StdDev) != cfg.Batches {
		t.Fatalf("stats shape = %+v", st)
	}
	// First batch is always perfect precision: mean 1, sd 0.
	if st.Mean[0] != 1 || st.StdDev[0] != 0 {
		t.Fatalf("batch 1 stats = %v ± %v", st.Mean[0], st.StdDev[0])
	}
	// Later batches: mean in (0,1), sd small but nonzero across seeds.
	last := len(st.Mean) - 1
	if st.Mean[last] <= 0 || st.Mean[last] >= 1 {
		t.Fatalf("final mean = %v", st.Mean[last])
	}
	if st.StdDev[last] <= 0 || st.StdDev[last] > 0.2 {
		t.Fatalf("final sd = %v", st.StdDev[last])
	}
	for _, b := range st.Batches {
		if b < 1 || b > cfg.Batches {
			t.Fatalf("batches = %v", st.Batches)
		}
	}
}

func TestRunSeedsValidation(t *testing.T) {
	cfg := fastConfig()
	if _, err := RunSeeds(cfg, 0); err == nil {
		t.Fatal("zero seeds accepted")
	}
	cfg.QueriesPerBatch = 0
	if _, err := RunSeeds(cfg, 2); err == nil {
		t.Fatal("workload-free RunSeeds accepted")
	}
}

func TestZeroBatchesJustLoads(t *testing.T) {
	cfg := fastConfig()
	cfg.Batches = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Points) != 0 || res.Stats.Active != cfg.DBSize {
		t.Fatalf("zero-batch run wrong: %+v", res.Stats)
	}
}
