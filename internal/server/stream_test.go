package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"amnesiadb"
)

// TestTablesReportsKinds pins the /tables catalog listing: flat tables
// carry kind "table", partitioned ones "partitioned" plus their shard
// count, and /stats and /precision serve both kinds.
func TestTablesReportsKinds(t *testing.T) {
	ts, db := newServer(t)
	if _, err := db.CreateTable("flat", "a"); err != nil {
		t.Fatal(err)
	}
	pt, err := db.CreatePartitionedTable("sharded", "v", 1000, 4, "uniform", 400)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Insert([]int64{1, 2, 3, 500, 900}); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts.URL+"/tables")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tables status %d", resp.StatusCode)
	}
	var rels []amnesiadb.RelationInfo
	if err := json.Unmarshal(body, &rels); err != nil {
		t.Fatal(err)
	}
	want := []amnesiadb.RelationInfo{
		{Name: "flat", Kind: "table"},
		{Name: "sharded", Kind: "partitioned", Shards: 4},
	}
	if len(rels) != 2 || rels[0] != want[0] || rels[1] != want[1] {
		t.Fatalf("tables = %+v, want %+v", rels, want)
	}

	resp, body = get(t, ts.URL+"/stats?table=sharded")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned stats status %d: %s", resp.StatusCode, body)
	}
	var stats map[string]any
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats["Tuples"].(float64) != 5 {
		t.Fatalf("partitioned stats = %v", stats)
	}

	resp, body = get(t, ts.URL+"/precision?table=sharded&lo=0&hi=1000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned precision status %d: %s", resp.StatusCode, body)
	}
	var prec map[string]float64
	if err := json.Unmarshal(body, &prec); err != nil {
		t.Fatal(err)
	}
	if prec["precision"] != 1 || prec["returned"] != 5 {
		t.Fatalf("partitioned precision = %v", prec)
	}
}

// TestQueryPartitionedTable pins the §4.4 serving loop: a /query against
// a partitioned table returns exactly PartitionedTable.Select's rows.
func TestQueryPartitionedTable(t *testing.T) {
	ts, db := newServer(t)
	pt, err := db.CreatePartitionedTable("p", "v", 1000, 4, "uniform", 1000)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 300)
	for i := range vals {
		vals[i] = int64(i * 3 % 1000)
	}
	if err := pt.Insert(vals); err != nil {
		t.Fatal(err)
	}
	want, err := pt.Select(100, 400)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := post(t, ts.URL+"/query", map[string]any{"sql": "SELECT v FROM p WHERE v >= 100 AND v < 400"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if got := r.([]any)[0].(float64); got != float64(want[i]) {
			t.Fatalf("row %d = %v, want %d", i, got, want[i])
		}
	}
	if _, ok := out["error"]; ok {
		t.Fatalf("unexpected error member: %v", out["error"])
	}
}

// TestQueryJoin pins the HTTP JOIN path against DB.Join: the streamed
// rows must be byte-identical to the engine's direct join.
func TestQueryJoin(t *testing.T) {
	ts, db := newServer(t)
	a, err := db.CreateTable("a", "k", "v")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateTable("b", "k", "w")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(map[string][]int64{"k": {1, 2, 2, 3}, "v": {10, 20, 21, 30}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(map[string][]int64{"k": {2, 3, 3, 5}, "w": {200, 300, 301, 500}}); err != nil {
		t.Fatal(err)
	}
	joined, err := db.Join(a, "k", b, "k", amnesiadb.All())
	if err != nil {
		t.Fatal(err)
	}
	resp, out := post(t, ts.URL+"/query", map[string]any{"sql": "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != len(joined) {
		t.Fatalf("rows = %d, want %d", len(rows), len(joined))
	}
	vcol, err := a.Select("v", amnesiadb.All())
	if err != nil {
		t.Fatal(err)
	}
	wcol, err := b.Select("w", amnesiadb.All())
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range joined {
		row := rows[i].([]any)
		if row[0].(float64) != float64(vcol.Values[jr.LeftRow]) || row[1].(float64) != float64(wcol.Values[jr.RightRow]) {
			t.Fatalf("row %d = %v, want (%d, %d)", i, row, vcol.Values[jr.LeftRow], wcol.Values[jr.RightRow])
		}
	}
}

// flushCounter is an http.ResponseWriter + Flusher that counts flushes,
// so the streaming contract — multiple incremental flushes for large
// results — is directly observable.
type flushCounter struct {
	header  http.Header
	body    bytes.Buffer
	status  int
	flushes int
}

func newFlushCounter() *flushCounter { return &flushCounter{header: make(http.Header)} }

func (f *flushCounter) Header() http.Header { return f.header }

func (f *flushCounter) Write(p []byte) (int, error) { return f.body.Write(p) }

func (f *flushCounter) WriteHeader(status int) { f.status = status }

func (f *flushCounter) Flush() { f.flushes++ }

// TestQueryStreamsInChunks drives a result far larger than one stream
// chunk through the handler and counts flushes: the response must leave
// in multiple increments, not one buffered write.
func TestQueryStreamsInChunks(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	tab, err := db.CreateTable("big", "a")
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000 // ~5 stream chunks of 4096
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := tab.InsertColumn("a", vals); err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	body, _ := json.Marshal(map[string]string{"sql": "SELECT a FROM big"})
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	fc := newFlushCounter()
	srv.ServeHTTP(fc, req)
	if fc.status != http.StatusOK {
		t.Fatalf("status %d: %s", fc.status, fc.body.String())
	}
	if fc.flushes < 3 {
		t.Fatalf("flushes = %d, want several for %d rows", fc.flushes, n)
	}
	var out struct {
		Columns []string    `json:"columns"`
		Rows    [][]float64 `json:"rows"`
		Error   string      `json:"error"`
	}
	if err := json.Unmarshal(fc.body.Bytes(), &out); err != nil {
		t.Fatalf("streamed body is not valid JSON: %v", err)
	}
	if len(out.Rows) != n || out.Error != "" {
		t.Fatalf("rows = %d (error %q), want %d", len(out.Rows), out.Error, n)
	}
}

// errAfterSource yields one good chunk, then fails — the shape of a
// mid-stream execution failure after the 200 is committed.
type errAfterSource struct {
	sent bool
}

func (s *errAfterSource) Next() ([][]float64, error) {
	if s.sent {
		return nil, errors.New("disk caught fire")
	}
	s.sent = true
	return [][]float64{{1}, {2}}, nil
}

// TestMidStreamErrorSentinel pins the bugfix for silently truncated
// streams: a failure after rows have been sent must close the JSON body
// with a trailing "error" member, so clients can detect the partial
// result instead of trusting a 200.
func TestMidStreamErrorSentinel(t *testing.T) {
	fc := newFlushCounter()
	streamResult(fc, []string{"a"}, []bool{true}, &errAfterSource{})
	if fc.status != http.StatusOK {
		t.Fatalf("status %d, want 200 (already committed)", fc.status)
	}
	raw := fc.body.String()
	var out struct {
		Columns []string    `json:"columns"`
		Rows    [][]float64 `json:"rows"`
		Error   string      `json:"error"`
	}
	if err := json.Unmarshal(fc.body.Bytes(), &out); err != nil {
		t.Fatalf("sentinel body is not valid JSON: %v\n%s", err, raw)
	}
	if !strings.Contains(out.Error, "disk caught fire") {
		t.Fatalf("error member = %q, want the stream failure", out.Error)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("partial rows = %d, want the 2 delivered before the failure", len(out.Rows))
	}
}

// TestPartitionedWriteSurface pins the catalog unification on the write
// endpoints: /insert routes to partitioned tables (single column only),
// /policy explains itself instead of claiming the table is unknown, and
// /precision validates the col parameter for both kinds.
func TestPartitionedWriteSurface(t *testing.T) {
	ts, db := newServer(t)
	if _, err := db.CreatePartitionedTable("p", "v", 1000, 4, "uniform", 100); err != nil {
		t.Fatal(err)
	}
	resp, out := post(t, ts.URL+"/insert", map[string]any{
		"table": "p", "columns": map[string][]int64{"v": {1, 500, 900}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partitioned insert status %d: %v", resp.StatusCode, out)
	}
	if out["Tuples"].(float64) != 3 {
		t.Fatalf("partitioned insert stats = %v", out)
	}
	resp, _ = post(t, ts.URL+"/insert", map[string]any{
		"table": "p", "columns": map[string][]int64{"wrong": {1}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-column insert status %d", resp.StatusCode)
	}
	resp, out = post(t, ts.URL+"/policy", map[string]any{
		"table": "p", "strategy": "fifo", "budget": 10,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partitioned policy status %d: %v", resp.StatusCode, out)
	}
	resp, _ = get(t, ts.URL+"/precision?table=p&col=nosuch&lo=0&hi=100")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-col precision status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/precision?table=p&col=v&lo=0&hi=100")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good-col precision status %d", resp.StatusCode)
	}
}

// TestJoinUnknownTableIs404AndBadJoinIs400 pins the pre-stream status
// mapping for the new join grammar.
func TestJoinUnknownTableIs404AndBadJoinIs400(t *testing.T) {
	ts, db := newServer(t)
	if _, err := db.CreateTable("a", "k"); err != nil {
		t.Fatal(err)
	}
	resp, _ := post(t, ts.URL+"/query", map[string]any{"sql": "SELECT a.k, b.k FROM a JOIN b ON a.k = b.k"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown join table status %d", resp.StatusCode)
	}
	if _, err := db.CreatePartitionedTable("p", "v", 100, 2, "uniform", 100); err != nil {
		t.Fatal(err)
	}
	resp, _ = post(t, ts.URL+"/query", map[string]any{"sql": "SELECT a.k, p.v FROM a JOIN p ON a.k = p.v"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partitioned join status %d", resp.StatusCode)
	}
}

// TestAppendRowJSONMatchesEncodingJSON pins the pooled serializer
// against encoding/json byte for byte, across the float shapes query
// results produce (integers, AVG fractions, extreme magnitudes,
// exponent formatting) plus the NaN -> null translation.
func TestAppendRowJSONMatchesEncodingJSON(t *testing.T) {
	rows := [][]float64{
		{0, 1, -1, 42},
		{0.5, -2.25, 1.0 / 3.0},
		{9.2e18, -9.2e18, 1e20, 1e21, 1.5e22},
		{1e-6, 9.9e-7, 1e-9, -2.5e-8},
		{123456789.123456, -0.000244140625},
	}
	for _, row := range rows {
		got := string(appendRowJSON(nil, row))
		want, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Fatalf("appendRowJSON(%v) = %s, want %s", row, got, want)
		}
	}
	// NaN cells become nulls (encoding/json would reject them).
	got := string(appendRowJSON(nil, []float64{1, math.NaN(), 3}))
	if got != "[1,null,3]" {
		t.Fatalf("NaN row = %s, want [1,null,3]", got)
	}
}

// TestQueryCancelledRequestContext pins the ctx propagation satellite at
// the HTTP surface: a request whose context is already cancelled cannot
// stream a full result — the body terminates with the cancellation in
// its trailing "error" member.
func TestQueryCancelledRequestContext(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	tab, err := db.CreateTable("big", "a")
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 200_000)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := tab.InsertColumn("a", vals); err != nil {
		t.Fatal(err)
	}
	srv := New(db)
	body, _ := json.Marshal(map[string]string{"sql": "SELECT a FROM big"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)).WithContext(ctx)
	fc := newFlushCounter()
	srv.ServeHTTP(fc, req)
	var out struct {
		Rows  [][]float64 `json:"rows"`
		Error string      `json:"error"`
	}
	if err := json.Unmarshal(fc.body.Bytes(), &out); err != nil {
		t.Fatalf("cancelled-request body is not valid JSON: %v\n%s", err, fc.body.String())
	}
	if !strings.Contains(out.Error, context.Canceled.Error()) {
		t.Fatalf("error member = %q, want the context cancellation", out.Error)
	}
	if len(out.Rows) == len(vals) {
		t.Fatal("cancelled request streamed the full result")
	}
}
