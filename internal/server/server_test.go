package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"amnesiadb"
)

func newServer(t *testing.T) (*httptest.Server, *amnesiadb.DB) {
	t.Helper()
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	return ts, db
}

func post(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestInsertCreatesAndFills(t *testing.T) {
	ts, db := newServer(t)
	resp, out := post(t, ts.URL+"/insert", map[string]any{
		"table":   "readings",
		"create":  []string{"value"},
		"columns": map[string][]int64{"value": {1, 2, 3}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["Tuples"].(float64) != 3 {
		t.Fatalf("stats = %v", out)
	}
	if _, ok := db.Table("readings"); !ok {
		t.Fatal("table not created")
	}
}

func TestInsertUnknownTableWithoutCreate(t *testing.T) {
	ts, _ := newServer(t)
	resp, _ := post(t, ts.URL+"/insert", map[string]any{
		"table":   "nope",
		"columns": map[string][]int64{"v": {1}},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts, _ := newServer(t)
	post(t, ts.URL+"/insert", map[string]any{
		"table":   "t",
		"create":  []string{"a"},
		"columns": map[string][]int64{"a": {10, 20, 30}},
	})
	resp, out := post(t, ts.URL+"/query", map[string]any{"sql": "SELECT AVG(a) FROM t"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 || rows[0].([]any)[0].(float64) != 20 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestQueryBadSQL(t *testing.T) {
	ts, _ := newServer(t)
	resp, out := post(t, ts.URL+"/query", map[string]any{"sql": "DROP TABLE x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out["error"] == "" {
		t.Fatal("no error body")
	}
}

func TestPolicyEndpointEnforces(t *testing.T) {
	ts, _ := newServer(t)
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	post(t, ts.URL+"/insert", map[string]any{
		"table":   "t",
		"create":  []string{"a"},
		"columns": map[string][]int64{"a": vals},
	})
	resp, out := post(t, ts.URL+"/policy", map[string]any{
		"table": "t", "strategy": "fifo", "budget": 10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if out["Active"].(float64) != 10 {
		t.Fatalf("active after policy = %v", out["Active"])
	}
}

func TestPolicyUnknownStrategy(t *testing.T) {
	ts, _ := newServer(t)
	post(t, ts.URL+"/insert", map[string]any{
		"table": "t", "create": []string{"a"},
		"columns": map[string][]int64{"a": {1}},
	})
	resp, _ := post(t, ts.URL+"/policy", map[string]any{
		"table": "t", "strategy": "bogus", "budget": 10,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestStatsAndTables(t *testing.T) {
	ts, _ := newServer(t)
	post(t, ts.URL+"/insert", map[string]any{
		"table": "x", "create": []string{"a"},
		"columns": map[string][]int64{"a": {1, 2}},
	})
	resp, body := get(t, ts.URL+"/stats?table=x")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats map[string]any
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats["Tuples"].(float64) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	resp, body = get(t, ts.URL+"/tables")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tables status %d", resp.StatusCode)
	}
	var rels []amnesiadb.RelationInfo
	if err := json.Unmarshal(body, &rels); err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 || rels[0].Name != "x" || rels[0].Kind != "table" || rels[0].Shards != 0 {
		t.Fatalf("tables = %+v", rels)
	}
	resp, _ = get(t, ts.URL+"/stats?table=missing")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing-table status %d", resp.StatusCode)
	}
}

func TestPrecisionEndpoint(t *testing.T) {
	ts, _ := newServer(t)
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	post(t, ts.URL+"/insert", map[string]any{
		"table": "t", "create": []string{"a"},
		"columns": map[string][]int64{"a": vals},
	})
	post(t, ts.URL+"/policy", map[string]any{"table": "t", "strategy": "uniform", "budget": 50})
	resp, body := get(t, ts.URL+"/precision?table=t&lo=0&hi=100")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out map[string]float64
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["precision"] != 0.5 || out["returned"] != 50 || out["missed"] != 50 {
		t.Fatalf("precision = %v", out)
	}
	resp, _ = get(t, ts.URL+"/precision?table=t&lo=x&hi=y")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-bounds status %d", resp.StatusCode)
	}
}

func TestQueryUnknownTableIs404(t *testing.T) {
	ts, _ := newServer(t)
	resp, out := post(t, ts.URL+"/query", map[string]any{"sql": "SELECT a FROM missing"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
}

func TestQueryUnknownColumnIs400(t *testing.T) {
	ts, _ := newServer(t)
	post(t, ts.URL+"/insert", map[string]any{
		"table": "t", "create": []string{"a"},
		"columns": map[string][]int64{"a": {1}},
	})
	resp, _ := post(t, ts.URL+"/query", map[string]any{"sql": "SELECT zz FROM t"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestQueryEmptyAggregateReturnsNull(t *testing.T) {
	// Regression: AVG over an empty qualifying set used to surface
	// engine.ErrNoRows as a 400; it must be a 200 with a JSON null.
	ts, _ := newServer(t)
	post(t, ts.URL+"/insert", map[string]any{
		"table": "t", "create": []string{"a"},
		"columns": map[string][]int64{"a": {1, 2, 3}},
	})
	resp, out := post(t, ts.URL+"/query", map[string]any{"sql": "SELECT AVG(a) FROM t WHERE a > 100"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 || rows[0].([]any)[0] != nil {
		t.Fatalf("rows = %v, want one null cell", rows)
	}
	ints := out["ints"].([]any)
	if len(ints) != 1 || ints[0].(bool) {
		t.Fatalf("ints = %v, want [false] for AVG", ints)
	}
	// COUNT stays 0, an exact int.
	resp, out = post(t, ts.URL+"/query", map[string]any{"sql": "SELECT COUNT(*) FROM t WHERE a > 100"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count status %d: %v", resp.StatusCode, out)
	}
	if out["rows"].([]any)[0].([]any)[0].(float64) != 0 {
		t.Fatalf("count rows = %v", out["rows"])
	}
	if !out["ints"].([]any)[0].(bool) {
		t.Fatalf("count ints = %v, want [true]", out["ints"])
	}
}

func TestQueryLimitZeroReturnsNoRows(t *testing.T) {
	ts, _ := newServer(t)
	post(t, ts.URL+"/insert", map[string]any{
		"table": "t", "create": []string{"a"},
		"columns": map[string][]int64{"a": {1, 2, 3}},
	})
	resp, out := post(t, ts.URL+"/query", map[string]any{"sql": "SELECT a FROM t LIMIT 0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	if rows := out["rows"].([]any); len(rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(rows))
	}
}
