package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"amnesiadb"
	"amnesiadb/internal/durability/failpoint"
	"amnesiadb/internal/engine/governor"
)

// TestHandlerPanicAnswers500 pins the recovery middleware: a panicking
// handler answers that one request with a 500 JSON error and the server
// keeps serving subsequent requests.
func TestHandlerPanicAnswers500(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	t.Cleanup(db.Close)
	s := New(db)
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatalf("request across panic: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("500 body is not JSON: %v", err)
	}
	if body["error"] == "" {
		t.Fatalf("500 body lacks error member: %v", body)
	}

	// The server survived: a healthy endpoint still answers.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after panic: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d, want 200", resp2.StatusCode)
	}
}

// TestDegradedMutationsAnswer503 pins the read-only degradation
// surface: once the WAL fails, mutations answer 503 + Retry-After,
// reads keep serving, and /healthz reports degraded.
func TestDegradedMutationsAnswer503(t *testing.T) {
	dir := t.TempDir()
	db, err := amnesiadb.OpenDir(dir, amnesiadb.Options{Seed: 1, Fsync: "always"})
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	t.Cleanup(db.Close)
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)

	resp, out := post(t, ts.URL+"/insert", map[string]any{
		"table": "t", "create": []string{"a"},
		"columns": map[string][]int64{"a": {1, 2, 3}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy insert: %d %v", resp.StatusCode, out)
	}

	// Keep the healing probe failing too, so degradation stays latched
	// for the duration of the assertions below instead of self-healing.
	failpoint.Enable(governor.FailpointProbe, failpoint.Error(failpoint.ErrInjected))
	failpoint.Enable("wal.fsync", failpoint.Error(failpoint.ErrInjected))
	t.Cleanup(failpoint.DisableAll)
	resp, _ = post(t, ts.URL+"/insert", map[string]any{
		"table": "t", "columns": map[string][]int64{"a": {4}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert during fsync failure = %d, want 503", resp.StatusCode)
	}
	failpoint.Disable("wal.fsync")

	// Latched: still 503 with Retry-After after the fault clears (the
	// probe — still failing — has not healed the instance yet).
	resp, _ = post(t, ts.URL+"/insert", map[string]any{
		"table": "t", "columns": map[string][]int64{"a": {5}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert after degradation = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 lacks Retry-After")
	}

	resp, out = post(t, ts.URL+"/query", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read in degraded mode = %d %v", resp.StatusCode, out)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer hresp.Body.Close()
	var h struct {
		Status        string `json:"status"`
		Degraded      bool   `json:"degraded"`
		DegradedCause string `json:"degraded_cause"`
	}
	data, _ := io.ReadAll(hresp.Body)
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatalf("healthz body: %v (%s)", err, data)
	}
	if !h.Degraded || h.Status != "degraded" || h.DegradedCause == "" {
		t.Fatalf("healthz = %+v, want degraded with cause", h)
	}
}

// TestCreatePartitionedEndpoint covers the POST /partitioned route end
// to end: create, insert through /insert, query through /query.
func TestCreatePartitionedEndpoint(t *testing.T) {
	ts, _ := newServer(t)
	resp, out := post(t, ts.URL+"/partitioned", map[string]any{
		"table": "m", "column": "v", "domain": 100, "parts": 4,
		"strategy": "uniform", "budget": 40,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create partitioned: %d %v", resp.StatusCode, out)
	}
	resp, out = post(t, ts.URL+"/insert", map[string]any{
		"table": "m", "columns": map[string][]int64{"v": {1, 25, 50, 75}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert into partitioned: %d %v", resp.StatusCode, out)
	}
	resp, out = post(t, ts.URL+"/query", map[string]any{"sql": "SELECT COUNT(*) FROM m"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query partitioned: %d %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 || rows[0].([]any)[0].(float64) != 4 {
		t.Fatalf("COUNT rows = %v, want [[4]]", rows)
	}
	// Duplicate create is the client's error, not a panic.
	resp, _ = post(t, ts.URL+"/partitioned", map[string]any{
		"table": "m", "column": "v", "domain": 100, "parts": 4,
		"strategy": "uniform", "budget": 40,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate create = %d, want 400", resp.StatusCode)
	}
}

// TestStreamingStillFlushesThroughRecovery guards the middleware's
// Flusher passthrough: streamed queries must keep their incremental
// flush behavior under the committedWriter wrapper.
func TestStreamingStillFlushesThroughRecovery(t *testing.T) {
	rec := httptest.NewRecorder()
	cw := &committedWriter{ResponseWriter: rec}
	if _, ok := interface{}(cw).(http.Flusher); !ok {
		t.Fatal("committedWriter lost http.Flusher")
	}
}
