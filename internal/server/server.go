// Package server exposes an amnesiadb instance over HTTP, turning the
// embedded library into the small network-facing DBMS the paper
// envisions operating "with limited tuning knobs". Endpoints:
//
//	POST /query      {"sql": "SELECT ..."}            -> rows as JSON
//	POST /insert     {"table": "t", "columns": {...}} -> new stats
//	POST /policy     {"table": "t", "strategy": "rot", "budget": 1000}
//	GET  /stats?table=t
//	GET  /tables
//	GET  /precision?table=t&col=a&lo=0&hi=100
//
// All responses are JSON; errors use HTTP status codes with a JSON body
// {"error": "..."}.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"amnesiadb"
	"amnesiadb/internal/sql"
)

// Server routes HTTP requests to a DB.
type Server struct {
	db  *amnesiadb.DB
	mux *http.ServeMux
}

// New returns a Server wrapping db.
func New(db *amnesiadb.DB) *Server {
	s := &Server{db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /insert", s.handleInsert)
	s.mux.HandleFunc("POST /policy", s.handlePolicy)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /tables", s.handleTables)
	s.mux.HandleFunc("GET /precision", s.handlePrecision)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type queryRequest struct {
	SQL string `json:"sql"`
}

// queryRow encodes one result row, turning the engine's NaN NULL-style
// cells (empty-set aggregates) into JSON nulls — encoding/json rejects
// NaN outright.
type queryRow []float64

// MarshalJSON implements json.Marshaler. Only empty-set aggregate
// results carry NaN, so the common projection row marshals directly
// without boxing cells.
func (r queryRow) MarshalJSON() ([]byte, error) {
	hasNaN := false
	for _, v := range r {
		if math.IsNaN(v) {
			hasNaN = true
			break
		}
	}
	if !hasNaN {
		return json.Marshal([]float64(r))
	}
	cells := make([]any, len(r))
	for i, v := range r {
		if math.IsNaN(v) {
			cells[i] = nil
		} else {
			cells[i] = v
		}
	}
	return json.Marshal(cells)
}

type queryResponse struct {
	Columns []string   `json:"columns"`
	Rows    []queryRow `json:"rows"`
	// Ints is per-column type info: true when values are exact integers
	// (projections, COUNT/SUM/MIN/MAX), false for AVG's floats — so
	// clients can tell 2.0 from 2.
	Ints []bool `json:"ints"`
}

// queryStatus maps a Query error to its HTTP status: malformed SQL is
// the client's fault (400), a missing table is addressable but absent
// (404), anything else is the server's problem (500).
func queryStatus(err error) int {
	switch {
	case errors.Is(err, amnesiadb.ErrUnknownTable):
		return http.StatusNotFound
	case errors.Is(err, sql.ErrInvalid):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	res, err := s.db.Query(req.SQL)
	if err != nil {
		writeErr(w, queryStatus(err), err)
		return
	}
	rows := make([]queryRow, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = queryRow(r)
	}
	writeJSON(w, http.StatusOK, queryResponse{Columns: res.Columns, Rows: rows, Ints: res.Ints})
}

type insertRequest struct {
	Table string `json:"table"`
	// Create lists column names to create the table on first use.
	Create  []string           `json:"create,omitempty"`
	Columns map[string][]int64 `json:"columns"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	t, ok := s.db.Table(req.Table)
	if !ok {
		if len(req.Create) == 0 {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown table %q (pass create to make it)", req.Table))
			return
		}
		var err error
		t, err = s.db.CreateTable(req.Table, req.Create...)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	if err := t.Insert(req.Columns); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, t.Stats())
}

type policyRequest struct {
	Table    string `json:"table"`
	Strategy string `json:"strategy"`
	Budget   int    `json:"budget"`
	Column   string `json:"column,omitempty"`
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	var req policyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	t, ok := s.db.Table(req.Table)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown table %q", req.Table))
		return
	}
	p := amnesiadb.Policy{Strategy: req.Strategy, Budget: req.Budget, Column: req.Column}
	if err := t.SetPolicy(p); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := t.EnforceBudget(); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, t.Stats())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.db.Table(r.URL.Query().Get("table"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown table %q", r.URL.Query().Get("table")))
		return
	}
	writeJSON(w, http.StatusOK, t.Stats())
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.db.TableNames())
}

func (s *Server) handlePrecision(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t, ok := s.db.Table(q.Get("table"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown table %q", q.Get("table")))
		return
	}
	col := q.Get("col")
	if col == "" {
		col = t.Columns()[0]
	}
	lo, err1 := strconv.ParseInt(q.Get("lo"), 10, 64)
	hi, err2 := strconv.ParseInt(q.Get("hi"), 10, 64)
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("lo and hi must be integers"))
		return
	}
	rf, mf, pf, err := t.Precision(col, amnesiadb.Range(lo, hi))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"returned": rf, "missed": mf, "precision": pf})
}
