// Package server exposes an amnesiadb instance over HTTP, turning the
// embedded library into the small network-facing DBMS the paper
// envisions operating "with limited tuning knobs". Endpoints:
//
//	POST /query        {"sql": "SELECT ..."}            -> rows as JSON
//	POST /insert       {"table": "t", "columns": {...}} -> new stats
//	POST /policy       {"table": "t", "strategy": "rot", "budget": 1000}
//	POST /partitioned  {"table": "t", "column": "v", "domain": 1000, "parts": 4, "strategy": "uniform", "budget": 100}
//	GET  /stats?table=t
//	GET  /tables
//	GET  /precision?table=t&col=a&lo=0&hi=100
//
// /query serves the whole relation catalog — flat tables, partitioned
// tables and two-table JOINs — and streams its response as a pipeline:
// the engine's morsel workers push scan chunks into a bounded channel
// while they are still scanning, projection to rows and JSON
// serialization run chunk by chunk with incremental flushes
// (http.Flusher), and the request context scopes the producers — so the
// first response bytes leave after the first morsel, a slow client
// exerts backpressure that bounds server-side memory to a few chunks,
// and a disconnected client cancels the scan. A query rejected up front
// still gets a clean 400/404/500; a failure after streaming has begun
// cannot retract the 200, so the JSON body is terminated with a
// trailing "error" member — clients must treat its presence (or a body
// that fails to parse) as a failed query.
//
// All responses are JSON; errors use HTTP status codes with a JSON body
// {"error": "..."}.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"amnesiadb"
	"amnesiadb/internal/sql"
)

// Config tunes the serving layer's admission control. The zero value
// defers to the database's Options.MaxQueries (and is unlimited when
// that is zero too).
type Config struct {
	// MaxQueries bounds the queries executing concurrently; arrivals
	// beyond it queue. Zero defers to db.MaxQueries(); if that is also
	// zero, admission is unlimited.
	MaxQueries int
	// QueueDepth is the shed watermark: arrivals finding this many
	// queries already waiting for a slot are rejected immediately with
	// 429 and a Retry-After header rather than queued — bounded queues
	// keep overload latency bounded instead of unbounded. Zero means
	// twice MaxQueries.
	QueueDepth int
	// RetryAfterSeconds is the Retry-After value sent with 429s;
	// zero means 1.
	RetryAfterSeconds int
}

// Server routes HTTP requests to a DB.
type Server struct {
	db  *amnesiadb.DB
	mux *http.ServeMux

	// slots is the admission semaphore for /query: one token per
	// executing query. nil disables admission control.
	slots      chan struct{}
	queueDepth int64
	// queued counts requests waiting for a slot; past queueDepth new
	// arrivals shed.
	queued     atomic.Int64
	retryAfter string
	// draining flags graceful shutdown: new queries get 503 while
	// in-flight ones finish.
	draining atomic.Bool
}

// New returns a Server wrapping db with admission defaults taken from
// the database's options.
func New(db *amnesiadb.DB) *Server { return NewConfigured(db, Config{}) }

// NewConfigured returns a Server wrapping db under the given admission
// configuration.
func NewConfigured(db *amnesiadb.DB, cfg Config) *Server {
	s := &Server{db: db, mux: http.NewServeMux()}
	maxQ := cfg.MaxQueries
	if maxQ == 0 {
		maxQ = db.MaxQueries()
	}
	if maxQ > 0 {
		s.slots = make(chan struct{}, maxQ)
		s.queueDepth = int64(cfg.QueueDepth)
		if s.queueDepth == 0 {
			s.queueDepth = int64(2 * maxQ)
		}
	}
	retry := cfg.RetryAfterSeconds
	if retry <= 0 {
		retry = 1
	}
	s.retryAfter = strconv.Itoa(retry)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /insert", s.handleInsert)
	s.mux.HandleFunc("POST /policy", s.handlePolicy)
	s.mux.HandleFunc("POST /partitioned", s.handleCreatePartitioned)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /tables", s.handleTables)
	s.mux.HandleFunc("GET /precision", s.handlePrecision)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// StartDraining moves the server into graceful shutdown: new queries
// are refused with 503 while requests already admitted run to
// completion. The caller then drains connections via http.Server.Shutdown.
func (s *Server) StartDraining() { s.draining.Store(true) }

// ServeHTTP implements http.Handler. Every request runs under panic
// recovery: a handler bug answers that one request with a 500 instead
// of killing the connection (or, for panics escaping the serving
// goroutine, the process). Nothing can retract an already-committed
// response, so the recovery wrapper tracks whether the handler wrote a
// status and only sends the 500 body when it did not.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cw := &committedWriter{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			if !cw.committed {
				writeErr(cw, http.StatusInternalServerError,
					fmt.Errorf("internal error: %v", rec))
			}
			// Keep the stack observable without crashing the server.
			debug.PrintStack()
		}
	}()
	s.mux.ServeHTTP(cw, r)
}

// committedWriter remembers whether a status line has been sent, so the
// panic recovery path knows whether a 500 can still be written.
type committedWriter struct {
	http.ResponseWriter
	committed bool
}

func (c *committedWriter) WriteHeader(status int) {
	c.committed = true
	c.ResponseWriter.WriteHeader(status)
}

func (c *committedWriter) Write(b []byte) (int, error) {
	c.committed = true
	return c.ResponseWriter.Write(b)
}

// Flush preserves http.Flusher through the wrapper; streaming responses
// depend on it.
func (c *committedWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeMutErr maps a mutation failure to its status. A durability
// degradation (ErrReadOnly) is the server's condition, not the
// client's: it answers 503 with Retry-After so well-behaved clients
// back off and retry against a restarted (recovered) instance.
func (s *Server) writeMutErr(w http.ResponseWriter, fallback int, err error) {
	if errors.Is(err, amnesiadb.ErrReadOnly) {
		w.Header().Set("Retry-After", s.retryAfter)
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeErr(w, fallback, err)
}

type queryRequest struct {
	SQL string `json:"sql"`
}

// rowBufPool recycles the per-request serialization buffer the stream
// loop assembles each chunk's JSON into: one pooled buffer, one Write
// and one flush per chunk, no per-row allocation. Buffers that grew
// beyond rowBufMax are dropped instead of pooled so one giant row
// cannot pin memory forever.
var rowBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 32<<10)
		return &b
	},
}

const rowBufMax = 1 << 20

// appendJSONFloat appends v exactly as encoding/json renders a float64
// — 'f' formatting in the human range, 'e' with a trimmed exponent
// outside it — so the hand-rolled row encoder is byte-identical to the
// json.Marshal output it replaces (pinned by TestAppendRowJSONMatchesEncodingJSON).
func appendJSONFloat(b []byte, v float64) []byte {
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, v, format, -1, 64)
	if format == 'e' {
		// clean up e-09 to e-9, as encoding/json does
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendRowJSON appends one result row as a JSON array, turning the
// engine's NaN NULL-style cells (empty-set aggregates) into JSON nulls
// — encoding/json rejects NaN outright.
func appendRowJSON(b []byte, row []float64) []byte {
	b = append(b, '[')
	for i, v := range row {
		if i > 0 {
			b = append(b, ',')
		}
		if math.IsNaN(v) {
			b = append(b, "null"...)
		} else {
			b = appendJSONFloat(b, v)
		}
	}
	return append(b, ']')
}

// queryHeader is the leading members of a streamed query response; the
// rows array and the optional trailing error member are appended by
// streamResult.
type queryHeader struct {
	Columns []string `json:"columns"`
	// Ints is per-column type info: true when values are exact integers
	// (projections, COUNT/SUM/MIN/MAX), false for AVG's floats — so
	// clients can tell 2.0 from 2.
	Ints []bool `json:"ints"`
}

// queryStatus maps a Query error to its HTTP status: malformed SQL is
// the client's fault (400), a missing table is addressable but absent
// (404), a query over its memory budget — or shed by the governor under
// process-wide pressure — is a too-large request (413), a query past
// its deadline timed out (408), anything else is the server's problem
// (500).
func queryStatus(err error) int {
	switch {
	case errors.Is(err, amnesiadb.ErrUnknownTable):
		return http.StatusNotFound
	case errors.Is(err, sql.ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, amnesiadb.ErrResourceExhausted):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, amnesiadb.ErrQueryDeadline), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

// errOverloaded is the 429 body; the paired Retry-After header tells
// well-behaved clients when to come back.
var errOverloaded = errors.New("server overloaded: concurrent-query limit and queue are full")

// errDraining is the 503 body during graceful shutdown.
var errDraining = errors.New("server draining: shutting down, not admitting new queries")

// admit applies admission control for one /query request: it acquires
// an execution slot, queueing while fewer than queueDepth requests
// wait and shedding with 429 + Retry-After beyond that. It returns a
// non-nil release exactly when the request may proceed; otherwise the
// response has been written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func()) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, errDraining)
		return nil
	}
	if s.slots == nil {
		return func() {}
	}
	select {
	case s.slots <- struct{}{}:
	default:
		// All slots busy: wait in the bounded queue or shed.
		if s.queued.Add(1) > s.queueDepth {
			s.queued.Add(-1)
			w.Header().Set("Retry-After", s.retryAfter)
			writeErr(w, http.StatusTooManyRequests, errOverloaded)
			return nil
		}
		select {
		case s.slots <- struct{}{}:
			s.queued.Add(-1)
		case <-r.Context().Done():
			// Client gave up while queued; nothing to write to.
			s.queued.Add(-1)
			return nil
		}
	}
	return func() { <-s.slots }
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	release := s.admit(w, r)
	if release == nil {
		return
	}
	defer release()
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	// Parsing, catalog lookups and validation all happen here, so bad
	// queries still map to clean pre-stream statuses; only execution
	// failures can surface after the 200 is committed. The request
	// context scopes the query's producers: a client that disconnects
	// mid-stream cancels the morsel workers instead of paying for the
	// whole scan.
	qs, err := s.db.QueryStreamCtx(r.Context(), req.SQL)
	if err != nil {
		writeErr(w, queryStatus(err), err)
		return
	}
	defer qs.Close()
	// Surface cache hits so clients (and the bench harness) can tell a
	// replayed answer from a live scan.
	if qs.Cached() {
		w.Header().Set("X-Amnesia-Cache", "hit")
	} else {
		w.Header().Set("X-Amnesia-Cache", "miss")
	}
	streamResult(w, qs.Columns, qs.Ints, qs)
}

// healthReport is the /healthz body: worker-pool saturation, admission
// pressure, live resource-governor counters, durability health and
// cache occupancy in one scrape-friendly object.
type healthReport struct {
	Status string `json:"status"` // "ok" | "draining" | "degraded"
	// Degraded reports a latched durability failure: the instance
	// serves reads but refuses mutations (503) until the background
	// probe heals it; NextProbe (RFC 3339) is when that next runs.
	Degraded      bool                `json:"degraded"`
	DegradedCause string              `json:"degraded_cause,omitempty"`
	NextProbe     string              `json:"next_probe,omitempty"`
	Heals         uint64              `json:"heals,omitempty"`
	Pool          amnesiadb.PoolStats `json:"pool"`
	Admission     struct {
		MaxQueries int   `json:"max_queries"` // 0 = unlimited
		InFlight   int   `json:"in_flight"`
		Queued     int64 `json:"queued"`
		QueueDepth int64 `json:"queue_depth"`
	} `json:"admission"`
	// Resources is the governor's live ledger: queries with registered
	// quotas, pooled/working-set bytes currently charged against them,
	// the process peak, the configured high-water mark (0 = shedding
	// off) and how many queries pressure shedding has killed.
	Resources struct {
		ActiveQueries int    `json:"active_queries"`
		UsedBytes     int64  `json:"used_bytes"`
		PeakBytes     int64  `json:"peak_bytes"`
		HighWater     int64  `json:"high_water"`
		Sheds         uint64 `json:"sheds"`
	} `json:"resources"`
	Cache amnesiadb.CacheStats `json:"cache"`
}

// handleHealthz serves the liveness/saturation snapshot. It bypasses
// admission control — a saturated or draining server must still answer
// its health checks (draining reports as such with a 200, so
// orchestrators see a live process that is deliberately finishing up).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var h healthReport
	h.Status = "ok"
	if deg, cause := s.db.Degraded(); deg {
		h.Status = "degraded"
		h.Degraded = true
		if cause != nil {
			h.DegradedCause = cause.Error()
		}
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	if ds := s.db.DurabilityStatus(); ds.Durable {
		h.Heals = ds.Heals
		if !ds.NextProbe.IsZero() {
			h.NextProbe = ds.NextProbe.UTC().Format(time.RFC3339Nano)
		}
	}
	h.Pool = s.db.PoolStats()
	h.Admission.MaxQueries = cap(s.slots)
	h.Admission.InFlight = len(s.slots)
	h.Admission.Queued = s.queued.Load()
	h.Admission.QueueDepth = s.queueDepth
	gs := s.db.GovernorStats()
	h.Resources.ActiveQueries = gs.ActiveQueries
	h.Resources.UsedBytes = gs.UsedBytes
	h.Resources.PeakBytes = gs.PeakBytes
	h.Resources.HighWater = gs.HighWater
	h.Resources.Sheds = gs.Sheds
	h.Cache = s.db.CacheStats()
	writeJSON(w, http.StatusOK, h)
}

// rowSource yields result rows chunk by chunk; nil means drained. The
// facade's QueryStream satisfies it.
type rowSource interface {
	Next() ([][]float64, error)
}

// streamResult serializes one query result incrementally: the envelope
// header first, then each chunk of rows followed by a flush, so
// response bytes leave while the engine's pipelined producers are still
// scanning later morsels. Each chunk is assembled into one pooled
// buffer and written in a single Write — no per-row allocation, and the
// engine batches the chunk was projected from have already been
// returned to their pool by the SQL layer. A mid-stream failure cannot
// retract the committed 200; instead the JSON object is closed with a
// trailing "error" member, keeping the body well-formed and the failure
// detectable (a body that does not parse at all means the connection
// itself died mid-row).
func streamResult(w http.ResponseWriter, columns []string, ints []bool, src rowSource) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	head, err := json.Marshal(queryHeader{Columns: columns, Ints: ints})
	if err != nil {
		return
	}
	// Reopen the header object so the rows array (and on failure the
	// error member) can be appended incrementally.
	w.Write(head[:len(head)-1])
	w.Write([]byte(`,"rows":[`))
	bufp := rowBufPool.Get().(*[]byte)
	defer func() {
		if cap(*bufp) <= rowBufMax {
			*bufp = (*bufp)[:0]
			rowBufPool.Put(bufp)
		}
	}()
	first := true
	for {
		rows, err := src.Next()
		if err != nil {
			msg, merr := json.Marshal(err.Error())
			if merr != nil {
				msg = []byte(`"query failed"`)
			}
			fmt.Fprintf(w, `],"error":%s}`, msg)
			flush()
			return
		}
		if rows == nil {
			break
		}
		buf := (*bufp)[:0]
		for _, row := range rows {
			if !first {
				buf = append(buf, ',')
			}
			first = false
			buf = appendRowJSON(buf, row)
		}
		*bufp = buf
		w.Write(buf)
		flush()
	}
	w.Write([]byte("]}"))
	flush()
}

type insertRequest struct {
	Table string `json:"table"`
	// Create lists column names to create the table on first use.
	Create  []string           `json:"create,omitempty"`
	Columns map[string][]int64 `json:"columns"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if p, ok := s.db.Partitioned(req.Table); ok {
		// Partitioned tables take their single column's values; the
		// batch routes to the value-range shards.
		vals, ok := req.Columns[p.Column()]
		if !ok || len(req.Columns) != 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("partitioned table %q takes exactly its column %q", req.Table, p.Column()))
			return
		}
		if err := p.Insert(vals); err != nil {
			s.writeMutErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, p.Stats())
		return
	}
	t, ok := s.db.Table(req.Table)
	if !ok {
		if len(req.Create) == 0 {
			writeErr(w, http.StatusNotFound, fmt.Errorf("unknown table %q (pass create to make it)", req.Table))
			return
		}
		var err error
		t, err = s.db.CreateTable(req.Table, req.Create...)
		if err != nil {
			s.writeMutErr(w, http.StatusBadRequest, err)
			return
		}
	}
	if err := t.Insert(req.Columns); err != nil {
		s.writeMutErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, t.Stats())
}

// createPartitionedRequest is the POST /partitioned body.
type createPartitionedRequest struct {
	Table    string `json:"table"`
	Column   string `json:"column"`
	Domain   int64  `json:"domain"`
	Parts    int    `json:"parts"`
	Strategy string `json:"strategy"`
	Budget   int    `json:"budget"`
}

// handleCreatePartitioned creates a partitioned table, making the §4.4
// adaptive-partitioning catalog reachable over the wire.
func (s *Server) handleCreatePartitioned(w http.ResponseWriter, r *http.Request) {
	var req createPartitionedRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	p, err := s.db.CreatePartitionedTable(req.Table, req.Column, req.Domain, req.Parts, req.Strategy, req.Budget)
	if err != nil {
		s.writeMutErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, p.Stats())
}

type policyRequest struct {
	Table    string `json:"table"`
	Strategy string `json:"strategy"`
	Budget   int    `json:"budget"`
	Column   string `json:"column,omitempty"`
}

func (s *Server) handlePolicy(w http.ResponseWriter, r *http.Request) {
	var req policyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	t, ok := s.db.Table(req.Table)
	if !ok {
		if _, part := s.db.Partitioned(req.Table); part {
			// Per-shard budgets are managed by the partition layer's
			// Adapt loop, not a table-level policy.
			writeErr(w, http.StatusBadRequest, fmt.Errorf("partitioned table %q manages per-shard budgets; table policies do not apply", req.Table))
			return
		}
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown table %q", req.Table))
		return
	}
	p := amnesiadb.Policy{Strategy: req.Strategy, Budget: req.Budget, Column: req.Column}
	if err := t.SetPolicy(p); err != nil {
		s.writeMutErr(w, http.StatusBadRequest, err)
		return
	}
	if err := t.EnforceBudget(); err != nil {
		s.writeMutErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, t.Stats())
}

// handleStats serves tuple counters for either catalog kind.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("table")
	if t, ok := s.db.Table(name); ok {
		writeJSON(w, http.StatusOK, t.Stats())
		return
	}
	if p, ok := s.db.Partitioned(name); ok {
		writeJSON(w, http.StatusOK, p.Stats())
		return
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("unknown table %q", name))
}

// handleTables lists the relation catalog: every entry's name, its kind
// (table | partitioned) and, for partitioned tables, the shard count.
func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.db.Relations())
}

// handlePrecision serves the §2.3 metrics for either catalog kind.
func (s *Server) handlePrecision(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("table")
	lo, err1 := strconv.ParseInt(q.Get("lo"), 10, 64)
	hi, err2 := strconv.ParseInt(q.Get("hi"), 10, 64)
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("lo and hi must be integers"))
		return
	}
	var rf, mf int
	var pf float64
	var err error
	if t, ok := s.db.Table(name); ok {
		col := q.Get("col")
		if col == "" {
			col = t.Columns()[0]
		}
		rf, mf, pf, err = t.Precision(col, amnesiadb.Range(lo, hi))
	} else if p, ok := s.db.Partitioned(name); ok {
		if col := q.Get("col"); col != "" && col != p.Column() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("partitioned table %q has no column %q", name, col))
			return
		}
		rf, mf, pf, err = p.Precision(lo, hi)
	} else {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown table %q", name))
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"returned": rf, "missed": mf, "precision": pf})
}
