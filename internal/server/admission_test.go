package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"amnesiadb"
)

// admissionServer builds a server with one execution slot and a
// one-deep wait queue over a table large enough that an unread
// streaming response blocks its handler in streamResult — holding the
// slot for as long as the test wants via client-side backpressure.
func admissionServer(t *testing.T) (*httptest.Server, *Server, *amnesiadb.DB) {
	t.Helper()
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1, CacheEntries: 16})
	tab, err := db.CreateTable("big", "a")
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 400_000)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := tab.InsertColumn("a", vals); err != nil {
		t.Fatal(err)
	}
	h := NewConfigured(db, Config{MaxQueries: 1, QueueDepth: 1, RetryAfterSeconds: 2})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, h, db
}

func postQuery(t *testing.T, url, sqlText string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"sql": sqlText})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func healthz(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// blockingWriter is a ResponseWriter whose Write parks until released:
// it stands in for a client that stopped reading, pinning the handler
// inside streamResult with its admission slot held — deterministically,
// without depending on socket buffer sizes.
type blockingWriter struct {
	header  http.Header
	started chan struct{} // closed on the first Write
	release chan struct{} // closing it lets Writes pass through
	once    sync.Once
}

func newBlockingWriter() *blockingWriter {
	return &blockingWriter{
		header:  make(http.Header),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (w *blockingWriter) Header() http.Header { return w.header }
func (w *blockingWriter) WriteHeader(int)     {}
func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.started) })
	<-w.release
	return len(p), nil
}

func queryRequestFor(t *testing.T, sqlText string) *http.Request {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"sql": sqlText})
	return httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
}

// TestAdmissionShedsAndRecovers pins the overload contract: with the
// single slot held by a streaming query and one request queued, the
// next arrival is shed with 429 + Retry-After; once the slot-holder
// drains, the queued request completes and fresh requests are admitted
// again.
func TestAdmissionShedsAndRecovers(t *testing.T) {
	_, h, _ := admissionServer(t)

	// Occupy the slot: a streaming query whose writer blocks after the
	// first chunk, exactly like a stalled client.
	hold := newBlockingWriter()
	holderDone := make(chan struct{})
	go func() {
		h.ServeHTTP(hold, queryRequestFor(t, "SELECT a FROM big"))
		close(holderDone)
	}()
	select {
	case <-hold.started:
	case <-time.After(10 * time.Second):
		t.Fatal("holder query never started streaming")
	}

	// Fill the one queue seat with a second request; wait until the
	// server counts it queued so the test is race-free.
	queuedRec := httptest.NewRecorder()
	queuedDone := make(chan struct{})
	go func() {
		h.ServeHTTP(queuedRec, queryRequestFor(t, "SELECT COUNT(*) FROM big"))
		close(queuedDone)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for h.queued.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the third arrival is shed immediately.
	shedRec := httptest.NewRecorder()
	h.ServeHTTP(shedRec, queryRequestFor(t, "SELECT COUNT(*) FROM big"))
	if shedRec.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", shedRec.Code)
	}
	if got := shedRec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}

	// Unstick the holder: its handler finishes, releasing the slot to
	// the queued request, which must now complete successfully.
	close(hold.release)
	select {
	case <-holderDone:
	case <-time.After(10 * time.Second):
		t.Fatal("holder did not finish after release")
	}
	select {
	case <-queuedDone:
		if queuedRec.Code != http.StatusOK {
			t.Fatalf("queued request finished with %d", queuedRec.Code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request did not complete after slot release")
	}

	// Recovery: with the system idle again, a fresh query is admitted.
	okRec := httptest.NewRecorder()
	h.ServeHTTP(okRec, queryRequestFor(t, "SELECT COUNT(*) FROM big"))
	if okRec.Code != http.StatusOK {
		t.Fatalf("post-recovery status = %d", okRec.Code)
	}
}

// TestHealthzReportsAndDrainRefuses pins the observability and
// shutdown surface: /healthz exposes pool width, admission bounds and
// cache counters; StartDraining flips it to "draining" and new queries
// get 503 while /healthz stays served.
func TestHealthzReportsAndDrainRefuses(t *testing.T) {
	ts, h, db := admissionServer(t)

	// Prime the cache with a repeated statement so the counters move.
	for i := 0; i < 2; i++ {
		resp := postQuery(t, ts.URL, "SELECT COUNT(*) FROM big")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	rep := healthz(t, ts.URL)
	if rep["status"] != "ok" {
		t.Fatalf("status = %v", rep["status"])
	}
	adm := rep["admission"].(map[string]any)
	if adm["max_queries"].(float64) != 1 || adm["queue_depth"].(float64) != 1 {
		t.Fatalf("admission bounds = %v", adm)
	}
	pool := rep["pool"].(map[string]any)
	if pool["workers"].(float64) != float64(db.PoolStats().Workers) {
		t.Fatalf("pool workers = %v, want %d", pool["workers"], db.PoolStats().Workers)
	}
	cache := rep["cache"].(map[string]any)
	if cache["result_hits"].(float64) < 1 {
		t.Fatalf("cache counters did not move: %v", cache)
	}

	h.StartDraining()
	refused := postQuery(t, ts.URL, "SELECT COUNT(*) FROM big")
	defer refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", refused.StatusCode)
	}
	if rep := healthz(t, ts.URL); rep["status"] != "draining" {
		t.Fatalf("healthz status while draining = %v", rep["status"])
	}
}

// TestCacheHeaderOnQuery pins the hit/miss response header clients and
// the bench harness read.
func TestCacheHeaderOnQuery(t *testing.T) {
	ts, _, _ := admissionServer(t)
	first := postQuery(t, ts.URL, "SELECT SUM(a) FROM big WHERE a < 1000")
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	if got := first.Header.Get("X-Amnesia-Cache"); got != "miss" {
		t.Fatalf("first query cache header = %q, want miss", got)
	}
	second := postQuery(t, ts.URL, "SELECT SUM(a) FROM big WHERE a < 1000")
	io.Copy(io.Discard, second.Body)
	second.Body.Close()
	if got := second.Header.Get("X-Amnesia-Cache"); got != "hit" {
		t.Fatalf("repeat query cache header = %q, want hit", got)
	}
}
