package report

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"

	"amnesiadb/internal/metrics"
	"amnesiadb/internal/sim"
)

// palette gives each figure line a distinct colour, in legend order
// matching the paper's five-strategy figures.
var palette = []color.RGBA{
	{R: 0xd6, G: 0x27, B: 0x28, A: 0xff}, // red
	{R: 0x1f, G: 0x77, B: 0xb4, A: 0xff}, // blue
	{R: 0x2c, G: 0xa0, B: 0x2c, A: 0xff}, // green
	{R: 0xff, G: 0x7f, B: 0x0e, A: 0xff}, // orange
	{R: 0x94, G: 0x67, B: 0xbd, A: 0xff}, // purple
	{R: 0x8c, G: 0x56, B: 0x4b, A: 0xff}, // brown
	{R: 0xe3, G: 0x77, B: 0xc2, A: 0xff}, // pink
	{R: 0x7f, G: 0x7f, B: 0x7f, A: 0xff}, // grey
}

// WriteSeriesPNG renders precision series as a line chart (y in [0, 1])
// and writes it as a PNG. Dimensions default to 640x480 when zero.
func WriteSeriesPNG(w io.Writer, series []*metrics.Series, width, height int) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series to render")
	}
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 480
	}
	const margin = 32
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	fill(img, color.White)
	plotW, plotH := width-2*margin, height-2*margin

	// Axes.
	for x := 0; x <= plotW; x++ {
		img.Set(margin+x, height-margin, color.Black)
	}
	for y := 0; y <= plotH; y++ {
		img.Set(margin, margin+y, color.Black)
	}
	// Gridlines at 0.25/0.5/0.75.
	grid := color.RGBA{R: 0xdd, G: 0xdd, B: 0xdd, A: 0xff}
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		y := margin + int((1-frac)*float64(plotH))
		for x := 1; x <= plotW; x++ {
			img.Set(margin+x, y, grid)
		}
	}

	n := len(series[0].Points)
	for si, s := range series {
		if len(s.Points) != n {
			return fmt.Errorf("report: series %s has %d points, want %d", s.Name, len(s.Points), n)
		}
		col := palette[si%len(palette)]
		var px, py int
		for i, p := range s.Points {
			x := margin
			if n > 1 {
				x += i * plotW / (n - 1)
			}
			y := margin + int((1-clamp01(p.Precision))*float64(plotH))
			if i > 0 {
				line(img, px, py, x, y, col)
			}
			dot(img, x, y, col)
			px, py = x, y
		}
	}
	return png.Encode(w, img)
}

// WriteMapPNG renders the Figure 1/2 amnesia map as a heat map: one row
// band per run, one column per timeline batch; brightness = active
// percentage (the paper's "the brighter the colored area is, the more
// tuples are still accessible").
func WriteMapPNG(w io.Writer, results []*sim.Result, width, bandHeight int) error {
	if len(results) == 0 {
		return fmt.Errorf("report: no results to render")
	}
	if width <= 0 {
		width = 640
	}
	if bandHeight <= 0 {
		bandHeight = 48
	}
	const gap = 4
	n := len(results[0].MapActive)
	height := len(results)*(bandHeight+gap) - gap
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	fill(img, color.White)
	for ri, r := range results {
		if len(r.MapActive) != n {
			return fmt.Errorf("report: result %s has %d map points, want %d", r.Series.Name, len(r.MapActive), n)
		}
		pct := r.ActivePercent()
		y0 := ri * (bandHeight + gap)
		for b := 0; b < n; b++ {
			shade := uint8(255 * pct[b] / 100)
			c := color.RGBA{R: shade, G: shade, B: 0, A: 0xff} // dark -> bright yellow
			x0 := b * width / n
			x1 := (b + 1) * width / n
			for y := y0; y < y0+bandHeight; y++ {
				for x := x0; x < x1; x++ {
					img.Set(x, y, c)
				}
			}
		}
	}
	return png.Encode(w, img)
}

func fill(img *image.RGBA, c color.Color) {
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			img.Set(x, y, c)
		}
	}
}

// line draws with the integer Bresenham algorithm.
func line(img *image.RGBA, x0, y0, x1, y1 int, c color.Color) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		img.Set(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func dot(img *image.RGBA, x, y int, c color.Color) {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			img.Set(x+dx, y+dy, c)
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
