package report

import (
	"bytes"
	"image/png"
	"testing"

	"amnesiadb/internal/metrics"
	"amnesiadb/internal/sim"
)

func TestWriteSeriesPNG(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesPNG(&buf, []*metrics.Series{
		mkSeries("fifo", 1.0, 0.5, 0.1),
		mkSeries("area", 0.9, 0.8, 0.7),
	}, 320, 240)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 320 || b.Dy() != 240 {
		t.Fatalf("dimensions = %dx%d", b.Dx(), b.Dy())
	}
	// Some pixels must be non-white (lines were drawn).
	colored := 0
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bb, _ := img.At(x, y).RGBA()
			if r != 0xffff || g != 0xffff || bb != 0xffff {
				colored++
			}
		}
	}
	if colored < 500 {
		t.Fatalf("only %d non-white pixels; chart looks empty", colored)
	}
}

func TestWriteSeriesPNGDefaultsAndErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesPNG(&buf, nil, 0, 0); err == nil {
		t.Fatal("empty series accepted")
	}
	buf.Reset()
	if err := WriteSeriesPNG(&buf, []*metrics.Series{mkSeries("a", 0.5)}, 0, 0); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 640 || img.Bounds().Dy() != 480 {
		t.Fatalf("defaults = %v", img.Bounds())
	}
	buf.Reset()
	err = WriteSeriesPNG(&buf, []*metrics.Series{
		mkSeries("a", 0.5), mkSeries("b", 0.5, 0.4),
	}, 0, 0)
	if err == nil {
		t.Fatal("ragged series accepted")
	}
}

func TestWriteMapPNGShades(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMapPNG(&buf, []*sim.Result{
		mkResult("fifo", 0, 100),
	}, 200, 40)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Left half (batch 0, 0% active) must be dark, right half bright.
	r1, g1, _, _ := img.At(50, 20).RGBA()
	r2, g2, _, _ := img.At(150, 20).RGBA()
	if r1 != 0 || g1 != 0 {
		t.Fatalf("dead band not dark: %v %v", r1, g1)
	}
	if r2 != 0xffff || g2 != 0xffff {
		t.Fatalf("live band not bright: %v %v", r2, g2)
	}
	if err := WriteMapPNG(&buf, nil, 0, 0); err == nil {
		t.Fatal("empty map accepted")
	}
}
