package report

import (
	"bytes"
	"strings"
	"testing"

	"amnesiadb/internal/metrics"
	"amnesiadb/internal/sim"
)

func mkSeries(name string, ps ...float64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i, p := range ps {
		s.Points = append(s.Points, metrics.Point{Batch: i + 1, Precision: p, ErrorMargin: p})
	}
	return s
}

func mkResult(name string, pct ...float64) *sim.Result {
	r := &sim.Result{Series: metrics.Series{Name: name}}
	for _, p := range pct {
		r.MapTotal = append(r.MapTotal, 100)
		r.MapActive = append(r.MapActive, int(p))
	}
	return r
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, []*metrics.Series{
		mkSeries("fifo", 1.0, 0.5),
		mkSeries("area", 0.9, 0.8),
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "batch,fifo,area" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,1.0000,0.9000" || lines[2] != "2,0.5000,0.8000" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestWriteSeriesCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, nil); err == nil {
		t.Fatal("empty series accepted")
	}
	err := WriteSeriesCSV(&buf, []*metrics.Series{
		mkSeries("a", 1.0),
		mkSeries("b", 1.0, 0.9),
	})
	if err == nil {
		t.Fatal("ragged series accepted")
	}
}

func TestWriteMapCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMapCSV(&buf, []*sim.Result{
		mkResult("fifo", 0, 100),
		mkResult("uniform", 50, 75),
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "timeline,fifo,uniform" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,0.0,50.0" || lines[2] != "1,100.0,75.0" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestHeatRuneBounds(t *testing.T) {
	if heatRune(0) != ' ' {
		t.Fatalf("heatRune(0) = %q", heatRune(0))
	}
	if heatRune(100) != '@' {
		t.Fatalf("heatRune(100) = %q", heatRune(100))
	}
	if heatRune(150) != '@' || heatRune(-5) != ' ' {
		t.Fatal("heatRune does not clamp")
	}
}

func TestWriteHeatMap(t *testing.T) {
	var buf bytes.Buffer
	err := WriteHeatMap(&buf, []*sim.Result{
		mkResult("fifo", 0, 0, 100),
		mkResult("uniform", 40, 60, 80),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fifo") || !strings.Contains(out, "uniform") {
		t.Fatalf("missing labels:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[0], "|  @|") {
		t.Fatalf("fifo row = %q", lines[0])
	}
}

func TestWriteChart(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChart(&buf, []*metrics.Series{
		mkSeries("fifo", 1.0, 0.5, 0.0),
		mkSeries("area", 0.7, 0.65, 0.6),
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "f=fifo") || !strings.Contains(out, "u=area") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// fifo precision 1.0 must land on the top row, 0.0 on the bottom.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "f") {
		t.Fatalf("top row missing full-precision marker:\n%s", out)
	}
	if !strings.Contains(lines[4], "f") {
		t.Fatalf("bottom row missing zero-precision marker:\n%s", out)
	}
}

func TestWriteChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChart(&buf, nil, 5); err == nil {
		t.Fatal("empty chart accepted")
	}
	if err := WriteHeatMap(&buf, nil); err == nil {
		t.Fatal("empty heat map accepted")
	}
}
