// Package report renders experiment output as CSV (for external plotting)
// and as ASCII charts (for terminal inspection): the per-batch precision
// lines of Figure 3 and the timeline heat maps of Figures 1-2.
package report

import (
	"fmt"
	"io"
	"strings"

	"amnesiadb/internal/metrics"
	"amnesiadb/internal/sim"
)

// WriteSeriesCSV emits one row per batch with a column per series, matching
// the layout of the paper's precision figures: batch, <name1>, <name2>, ...
func WriteSeriesCSV(w io.Writer, series []*metrics.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series to write")
	}
	head := make([]string, 0, len(series)+1)
	head = append(head, "batch")
	for _, s := range series {
		head = append(head, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(head, ",")); err != nil {
		return err
	}
	n := len(series[0].Points)
	for _, s := range series {
		if len(s.Points) != n {
			return fmt.Errorf("report: series %s has %d points, want %d", s.Name, len(s.Points), n)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%d", series[0].Points[i].Batch))
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.4f", s.Points[i].Precision))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteMapCSV emits the amnesia-map data of Figures 1-2: one row per
// timeline batch with the active percentage per run.
func WriteMapCSV(w io.Writer, results []*sim.Result) error {
	if len(results) == 0 {
		return fmt.Errorf("report: no results to write")
	}
	head := []string{"timeline"}
	for _, r := range results {
		head = append(head, r.Series.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(head, ",")); err != nil {
		return err
	}
	n := len(results[0].MapActive)
	for _, r := range results {
		if len(r.MapActive) != n {
			return fmt.Errorf("report: result %s has %d map points, want %d", r.Series.Name, len(r.MapActive), n)
		}
	}
	for b := 0; b < n; b++ {
		row := []string{fmt.Sprintf("%d", b)}
		for _, r := range results {
			row = append(row, fmt.Sprintf("%.1f", r.ActivePercent()[b]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// heatRunes maps an active percentage to a glyph, darkest = forgotten.
var heatRunes = []rune(" .:-=+*#%@")

func heatRune(pct float64) rune {
	idx := int(pct / 100 * float64(len(heatRunes)))
	if idx >= len(heatRunes) {
		idx = len(heatRunes) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return heatRunes[idx]
}

// WriteHeatMap renders the Figure 1/2 amnesia map as rows of glyphs: one
// row per run, one glyph per timeline batch, '@' fully active, ' ' fully
// forgotten.
func WriteHeatMap(w io.Writer, results []*sim.Result) error {
	if len(results) == 0 {
		return fmt.Errorf("report: no results to render")
	}
	width := 0
	for _, r := range results {
		if len(r.Series.Name) > width {
			width = len(r.Series.Name)
		}
	}
	for _, r := range results {
		var sb strings.Builder
		for _, p := range r.ActivePercent() {
			sb.WriteRune(heatRune(p))
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", width, r.Series.Name, sb.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%s%d (timeline batch)\n", width, "", strings.Repeat(" ", maxInt(len(results[0].MapActive)-2, 0)), len(results[0].MapActive)-1)
	return err
}

// WriteChart renders precision series as a height x width ASCII chart,
// y in [0, 1]. Each series gets its own marker glyph.
func WriteChart(w io.Writer, series []*metrics.Series, height int) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series to render")
	}
	if height < 2 {
		height = 10
	}
	markers := []byte{'f', 'u', 'a', 'r', 'A', 'p', 'd', 'q'}
	n := len(series[0].Points)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", n*3))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for pi, p := range s.Points {
			row := int((1 - p.Precision) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][pi*3+1] = m
		}
	}
	for i, row := range grid {
		y := 1 - float64(i)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%4.2f |%s\n", y, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "     +%s\n", strings.Repeat("-", n*3)); err != nil {
		return err
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	_, err := fmt.Fprintf(w, "      batches 1..%d   %s\n", n, strings.Join(legend, " "))
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
