package bitvec

import (
	"testing"
	"testing/quick"

	"amnesiadb/internal/xrand"
)

func TestNewAllClear(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Count() != 0 {
		t.Fatalf("Count = %d, want 0", v.Count())
	}
	for i := 0; i < 130; i++ {
		if v.Test(i) {
			t.Fatalf("bit %d unexpectedly set", i)
		}
	}
}

func TestNewSetAllSet(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		v := NewSet(n)
		if v.Count() != n {
			t.Fatalf("NewSet(%d).Count = %d", n, v.Count())
		}
	}
}

func TestSetClearTest(t *testing.T) {
	v := New(200)
	for _, i := range []int{0, 1, 63, 64, 127, 128, 199} {
		v.Set(i)
		if !v.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
		v.Clear(i)
		if v.Test(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestSetTo(t *testing.T) {
	v := New(10)
	v.SetTo(3, true)
	v.SetTo(4, true)
	v.SetTo(3, false)
	if v.Test(3) || !v.Test(4) {
		t.Fatalf("SetTo wrong: %s", v)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	ops := map[string]func(*Vector){
		"Set(-1)":   func(v *Vector) { v.Set(-1) },
		"Set(n)":    func(v *Vector) { v.Set(10) },
		"Clear(n)":  func(v *Vector) { v.Clear(10) },
		"Test(n)":   func(v *Vector) { v.Test(10) },
		"CountHi":   func(v *Vector) { v.CountRange(0, 11) },
		"CountLoHi": func(v *Vector) { v.CountRange(5, 3) },
	}
	for name, op := range ops {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			op(New(10))
		}()
	}
}

func TestCountMatchesNaive(t *testing.T) {
	src := xrand.New(1)
	v := New(300)
	naive := 0
	for i := 0; i < 300; i++ {
		if src.Bool(0.4) {
			v.Set(i)
			naive++
		}
	}
	if v.Count() != naive {
		t.Fatalf("Count = %d, want %d", v.Count(), naive)
	}
}

func TestCountRange(t *testing.T) {
	src := xrand.New(2)
	v := New(257)
	set := make([]bool, 257)
	for i := range set {
		if src.Bool(0.5) {
			v.Set(i)
			set[i] = true
		}
	}
	for _, r := range [][2]int{{0, 257}, {0, 0}, {1, 64}, {63, 65}, {64, 128}, {100, 231}, {256, 257}} {
		want := 0
		for i := r[0]; i < r[1]; i++ {
			if set[i] {
				want++
			}
		}
		if got := v.CountRange(r[0], r[1]); got != want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", r[0], r[1], got, want)
		}
	}
}

func TestForEachSetOrderAndEarlyStop(t *testing.T) {
	v := New(200)
	want := []int{3, 64, 65, 150, 199}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEachSet(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	var first []int
	v.ForEachSet(func(i int) bool { first = append(first, i); return len(first) < 2 })
	if len(first) != 2 || first[1] != 64 {
		t.Fatalf("early stop got %v", first)
	}
}

func TestForEachClear(t *testing.T) {
	v := NewSet(130)
	v.Clear(0)
	v.Clear(64)
	v.Clear(129)
	got := v.ClearIndices()
	want := []int{0, 64, 129}
	if len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Fatalf("ClearIndices = %v, want %v", got, want)
	}
}

func TestForEachClearStopsAtLen(t *testing.T) {
	// Len not a multiple of 64: spare bits must not be reported.
	v := New(70)
	got := v.ClearIndices()
	if len(got) != 70 {
		t.Fatalf("ClearIndices on empty 70-bit vector = %d entries", len(got))
	}
	for i, g := range got {
		if g != i {
			t.Fatalf("entry %d = %d", i, g)
		}
	}
}

func TestNextSetNextClear(t *testing.T) {
	v := New(200)
	v.Set(5)
	v.Set(64)
	v.Set(199)
	cases := []struct{ from, want int }{{0, 5}, {5, 5}, {6, 64}, {65, 199}, {199, 199}}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Fatalf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := v.NextSet(200); got != -1 {
		t.Fatalf("NextSet past end = %d", got)
	}
	w := NewSet(130)
	w.Clear(64)
	if got := w.NextClear(0); got != 64 {
		t.Fatalf("NextClear(0) = %d, want 64", got)
	}
	if got := w.NextClear(65); got != -1 {
		t.Fatalf("NextClear(65) = %d, want -1", got)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(130)
	b := New(130)
	a.Set(1)
	a.Set(64)
	a.Set(100)
	b.Set(64)
	b.Set(101)

	and := a.Clone()
	and.And(b)
	if and.Count() != 1 || !and.Test(64) {
		t.Fatalf("And wrong: %v", and.SetIndices())
	}

	or := a.Clone()
	or.Or(b)
	if or.Count() != 4 {
		t.Fatalf("Or wrong: %v", or.SetIndices())
	}

	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != 2 || diff.Test(64) {
		t.Fatalf("AndNot wrong: %v", diff.SetIndices())
	}
}

func TestNotRespectsLen(t *testing.T) {
	v := New(70)
	v.Set(0)
	v.Not()
	if v.Count() != 69 {
		t.Fatalf("Not count = %d, want 69", v.Count())
	}
	if v.Test(0) {
		t.Fatal("bit 0 should be clear after Not")
	}
}

func TestGrow(t *testing.T) {
	v := New(10)
	v.Set(9)
	v.Grow(100)
	if v.Len() != 100 || !v.Test(9) || v.Count() != 1 {
		t.Fatalf("Grow lost state: len=%d count=%d", v.Len(), v.Count())
	}
	if v.Test(50) {
		t.Fatal("grown bits should be clear")
	}
	v.GrowSet(110)
	if v.Count() != 11 {
		t.Fatalf("GrowSet count = %d, want 11", v.Count())
	}
	v.Grow(5) // shrink request is a no-op
	if v.Len() != 110 {
		t.Fatalf("Grow shrank to %d", v.Len())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Set(3)
	b := a.Clone()
	b.Set(4)
	if a.Test(4) {
		t.Fatal("Clone shares storage")
	}
}

func TestResetClearsAll(t *testing.T) {
	v := NewSet(99)
	v.Reset()
	if v.Count() != 0 {
		t.Fatalf("Reset left %d bits", v.Count())
	}
}

func TestPropertySetThenTest(t *testing.T) {
	f := func(raw []uint16) bool {
		v := New(1 << 16)
		seen := map[int]bool{}
		for _, r := range raw {
			i := int(r)
			v.Set(i)
			seen[i] = true
		}
		if v.Count() != len(seen) {
			return false
		}
		for i := range seen {
			if !v.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCountComplement(t *testing.T) {
	// Count(v) + Count(not v) == Len for any vector.
	f := func(raw []uint16, nRaw uint16) bool {
		n := int(nRaw)%2000 + 1
		v := New(n)
		for _, r := range raw {
			v.Set(int(r) % n)
		}
		c := v.Count()
		w := v.Clone()
		w.Not()
		return c+w.Count() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCount(b *testing.B) {
	v := NewSet(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Count()
	}
}

func BenchmarkForEachSet(b *testing.B) {
	v := New(1 << 20)
	for i := 0; i < v.Len(); i += 3 {
		v.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		v.ForEachSet(func(j int) bool { sum += j; return true })
	}
}
