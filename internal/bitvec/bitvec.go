// Package bitvec implements the dense bitmaps amnesiadb uses to mark tuples
// as active or forgotten. The representation is a []uint64 with the usual
// word-parallel operations: set/clear/test, popcount, iteration over set
// bits, and in-place set algebra. Bit i corresponds to tuple position i in
// a table's insertion order.
package bitvec

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Vector is a fixed-length bitmap. The zero value is an empty vector of
// length 0; use New for a sized one. Vectors are not safe for concurrent
// mutation.
type Vector struct {
	words []uint64
	n     int // logical length in bits
}

// New returns a Vector of n bits, all clear. It panics if n < 0.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: New with negative length")
	}
	return &Vector{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewSet returns a Vector of n bits, all set.
func NewSet(n int) *Vector {
	v := New(n)
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.trim()
	return v
}

// Len returns the logical length in bits.
func (v *Vector) Len() int { return v.n }

// Word returns the i'th 64-bit word: bit b of the result is bit
// i*64 + b of the vector. Bits at or beyond Len are always zero. The
// scan kernels use Word to intersect a block's row range with the
// active bitmap one word at a time instead of one Test call per row.
func (v *Vector) Word(i int) uint64 { return v.words[i] }

// check panics when i is out of [0, n).
func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0, %d)", i, v.n))
	}
}

// Set sets bit i.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (v *Vector) Test(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// SetTo sets bit i to b.
func (v *Vector) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Grow extends the vector to length n bits, the new bits clear. Growing to
// a smaller or equal length is a no-op.
func (v *Vector) Grow(n int) {
	if n <= v.n {
		return
	}
	need := (n + wordBits - 1) / wordBits
	if need > len(v.words) {
		nw := make([]uint64, need)
		copy(nw, v.words)
		v.words = nw
	}
	v.n = n
}

// GrowSet extends the vector to length n bits with the new bits set.
// The fill runs word-parallel, so appending a large batch of active
// tuples costs O(words), not O(bits).
func (v *Vector) GrowSet(n int) {
	old := v.n
	v.Grow(n)
	if n <= old {
		return
	}
	first, last := old/wordBits, (n-1)/wordBits
	for wi := first; wi <= last; wi++ {
		w := ^uint64(0)
		if wi == first {
			w <<= uint(old) % wordBits
		}
		if wi == last {
			if r := n % wordBits; r != 0 {
				w &= (1 << uint(r)) - 1
			}
		}
		v.words[wi] |= w
	}
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// CountRange returns the number of set bits in [lo, hi).
func (v *Vector) CountRange(lo, hi int) int {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bitvec: CountRange [%d, %d) out of range [0, %d]", lo, hi, v.n))
	}
	c := 0
	for i := lo; i < hi && i%wordBits != 0; i++ {
		if v.Test(i) {
			c++
		}
		lo++
	}
	for ; lo+wordBits <= hi; lo += wordBits {
		c += bits.OnesCount64(v.words[lo/wordBits])
	}
	for i := lo; i < hi; i++ {
		if v.Test(i) {
			c++
		}
	}
	return c
}

// trim clears the spare bits beyond n in the last word so that Count and
// word-level algebra remain exact.
func (v *Vector) trim() {
	if r := v.n % wordBits; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(r)) - 1
	}
}

// ForEachSet calls fn for each set bit in ascending order. Returning false
// from fn stops the iteration early.
func (v *Vector) ForEachSet(fn func(i int) bool) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// ForEachClear calls fn for each clear bit below Len in ascending order.
// Returning false stops early.
func (v *Vector) ForEachClear(fn func(i int) bool) {
	for wi := range v.words {
		w := ^v.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			i := wi*wordBits + b
			if i >= v.n {
				return
			}
			if !fn(i) {
				return
			}
			w &= w - 1
		}
	}
}

// SetIndices returns the positions of all set bits.
func (v *Vector) SetIndices() []int {
	out := make([]int, 0, v.Count())
	v.ForEachSet(func(i int) bool { out = append(out, i); return true })
	return out
}

// ClearIndices returns the positions of all clear bits below Len.
func (v *Vector) ClearIndices() []int {
	out := make([]int, 0, v.n-v.Count())
	v.ForEachClear(func(i int) bool { out = append(out, i); return true })
	return out
}

// NextSet returns the position of the first set bit at or after i, or -1.
func (v *Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i / wordBits
	w := v.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// NextClear returns the position of the first clear bit at or after i and
// below Len, or -1.
func (v *Vector) NextClear(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < v.n; i++ {
		wi := i / wordBits
		w := ^v.words[wi] >> (uint(i) % wordBits)
		if w == 0 {
			i = (wi+1)*wordBits - 1
			continue
		}
		j := i + bits.TrailingZeros64(w)
		if j >= v.n {
			return -1
		}
		return j
	}
	return -1
}

// And replaces v with v AND other. Lengths must match.
func (v *Vector) And(other *Vector) {
	v.sameLen(other)
	for i := range v.words {
		v.words[i] &= other.words[i]
	}
}

// Or replaces v with v OR other. Lengths must match.
func (v *Vector) Or(other *Vector) {
	v.sameLen(other)
	for i := range v.words {
		v.words[i] |= other.words[i]
	}
}

// AndNot replaces v with v AND NOT other. Lengths must match.
func (v *Vector) AndNot(other *Vector) {
	v.sameLen(other)
	for i := range v.words {
		v.words[i] &^= other.words[i]
	}
}

// Not inverts all bits below Len.
func (v *Vector) Not() {
	for i := range v.words {
		v.words[i] = ^v.words[i]
	}
	v.trim()
}

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	w := &Vector{words: make([]uint64, len(v.words)), n: v.n}
	copy(w.words, v.words)
	return w
}

// Reset clears every bit.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

func (v *Vector) sameLen(other *Vector) {
	if v.n != other.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, other.n))
	}
}

// String renders the vector as a 0/1 string, bit 0 first. Intended for
// tests and small debug dumps only.
func (v *Vector) String() string {
	buf := make([]byte, v.n)
	for i := 0; i < v.n; i++ {
		if v.Test(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
