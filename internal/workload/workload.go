// Package workload generates the paper's query workloads (§2.2, §4.2): the
// range-query template
//
//	WHERE attr >= v - S/2*RANGE AND attr < v + S/2*RANGE
//
// with candidate value v drawn from the data seen so far and a selectivity
// factor S, plus the aggregate template SELECT AVG(a) FROM t [WHERE range].
package workload

import (
	"errors"
	"fmt"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/metrics"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// DefaultSelectivity is the ±1% window of Figure 3's query generator
// ("attr >= v - 0.01*RANGE and attr < v + 0.01*RANGE"), i.e. a total
// width of 2% of the observed value range.
const DefaultSelectivity = 0.02

// CandidateMode selects where the range-query centre value v comes from.
// The paper's §4.2 generator "selects a candidate value v from all active
// tuples"; the same section also stresses that the workload "addresses all
// tuples ever inserted", so all three readings are provided.
type CandidateMode int

const (
	// CandidateActive draws v as the value of a uniformly chosen active
	// tuple — the paper's literal generator. Queries then follow the
	// data distribution of what the database still remembers.
	CandidateActive CandidateMode = iota
	// CandidateStored draws v from a uniformly chosen stored tuple,
	// active or forgotten — "all data being inserted".
	CandidateStored
	// CandidateUniform draws v uniformly over [0, max]; the
	// distribution-agnostic upper bound on amnesia damage.
	CandidateUniform
)

// String names the mode.
func (m CandidateMode) String() string {
	switch m {
	case CandidateActive:
		return "active"
	case CandidateStored:
		return "stored"
	case CandidateUniform:
		return "uniform"
	default:
		return fmt.Sprintf("CandidateMode(%d)", int(m))
	}
}

// RangeGen produces range predicates over a table column following §4.2:
// a candidate value v (see CandidateMode) with the window
// [v - S/2*RANGE, v + S/2*RANGE), where RANGE is the maximum value seen up
// to the latest update batch.
type RangeGen struct {
	src *xrand.Source
	col string
	// Selectivity is the fraction of the observed value range covered by
	// each query (total window width).
	Selectivity float64
	// Candidates selects the source of the centre value v.
	Candidates CandidateMode
}

// NewRangeGen returns a generator with the paper's default ±1% window and
// active-tuple candidates.
func NewRangeGen(src *xrand.Source, col string) *RangeGen {
	if src == nil {
		panic("workload: NewRangeGen with nil source")
	}
	return &RangeGen{src: src, col: col, Selectivity: DefaultSelectivity}
}

// Next returns the next range predicate for t. The boolean is false when
// the table holds no values (or, under CandidateActive, no active tuples).
func (g *RangeGen) Next(t *table.Table) (expr.Range, bool) {
	c, err := t.Column(g.col)
	if err != nil {
		panic(err)
	}
	max, ok := c.MaxValue()
	if !ok {
		return expr.Range{}, false
	}
	var v int64
	switch g.Candidates {
	case CandidateActive:
		// Rejection-sample an active tuple; the active fraction in a
		// budgeted table keeps this cheap. Fall back to any stored
		// tuple if nothing is active.
		if t.ActiveCount() == 0 {
			return expr.Range{}, false
		}
		for {
			i := g.src.Intn(c.Len())
			if t.IsActive(i) {
				v = c.Get(i)
				break
			}
		}
	case CandidateStored:
		v = c.Get(g.src.Intn(c.Len()))
	case CandidateUniform:
		v = g.src.Int63n(max + 1)
	default:
		panic(fmt.Sprintf("workload: invalid candidate mode %d", int(g.Candidates)))
	}
	half := int64(g.Selectivity / 2 * float64(max))
	lo := v - half
	hi := v + half + 1 // at least the candidate value itself
	if lo < 0 {
		lo = 0
	}
	return expr.NewRange(lo, hi), true
}

// AggGen produces AVG aggregate queries (§4.3), optionally restricted by a
// range predicate drawn from an embedded RangeGen. With Predicated false it
// generates the paper's SELECT AVG(a) FROM t.
type AggGen struct {
	rg *RangeGen
	// Predicated selects between full-table AVG (false) and AVG over a
	// generated range (true) — the two §4.3 variants.
	Predicated bool
}

// NewAggGen returns an aggregate-query generator over col.
func NewAggGen(src *xrand.Source, col string, predicated bool) *AggGen {
	return &AggGen{rg: NewRangeGen(src, col), Predicated: predicated}
}

// RangeGen exposes the embedded range generator so callers can tune its
// selectivity and candidate mode.
func (g *AggGen) RangeGen() *RangeGen { return g.rg }

// Next returns the predicate of the next aggregate query.
func (g *AggGen) Next(t *table.Table) (expr.Expr, bool) {
	if !g.Predicated {
		return expr.True{}, true
	}
	return g.rg.Next(t)
}

// RunRangeBatch fires n range queries at the executor, folding precision
// metrics into a batch summary. Active-scan results update access
// frequencies (feeding rot-style strategies), ground truth is collected
// silently.
func RunRangeBatch(ex *engine.Exec, g *RangeGen, n int) (*metrics.Batch, error) {
	b := &metrics.Batch{}
	for i := 0; i < n; i++ {
		pred, ok := g.Next(ex.Table())
		if !ok {
			return nil, fmt.Errorf("workload: table %s has no data", ex.Table().Name())
		}
		rf, mf, _, err := ex.Precision(g.col, pred)
		if err != nil {
			return nil, err
		}
		b.Observe(metrics.Query{RF: rf, MF: mf})
	}
	return b, nil
}

// RunAggBatch fires n AVG queries, recording both tuple-level precision
// and the relative error of the average itself against the ScanAll ground
// truth.
func RunAggBatch(ex *engine.Exec, g *AggGen, n int) (*metrics.Batch, error) {
	b := &metrics.Batch{}
	col := g.rg.col
	for i := 0; i < n; i++ {
		pred, ok := g.Next(ex.Table())
		if !ok {
			return nil, fmt.Errorf("workload: table %s has no data", ex.Table().Name())
		}
		approx, errA := ex.Aggregate(col, pred, engine.ScanActive)
		exact, errE := ex.Aggregate(col, pred, engine.ScanAll)
		switch {
		case errors.Is(errE, engine.ErrNoRows):
			// Nothing qualifies anywhere: vacuously precise.
			b.Observe(metrics.Query{})
			continue
		case errE != nil:
			return nil, errE
		}
		if errors.Is(errA, engine.ErrNoRows) {
			// Everything in range was forgotten.
			b.Observe(metrics.Query{RF: 0, MF: exact.Rows})
			b.ObserveAggregate(0, exact.Avg)
			continue
		}
		if errA != nil {
			return nil, errA
		}
		b.Observe(metrics.Query{RF: approx.Rows, MF: exact.Rows - approx.Rows})
		b.ObserveAggregate(approx.Avg, exact.Avg)
	}
	return b, nil
}
