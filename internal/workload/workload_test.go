package workload

import (
	"testing"

	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

func tbl(t *testing.T, vals ...int64) *table.Table {
	t.Helper()
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	return tb
}

func seq(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestRangeGenWindowWidth(t *testing.T) {
	tb := tbl(t, seq(10001)...) // max = 10000
	g := NewRangeGen(xrand.New(1), "a")
	for i := 0; i < 1000; i++ {
		pred, ok := g.Next(tb)
		if !ok {
			t.Fatal("no predicate for populated table")
		}
		width := pred.Hi - pred.Lo
		// ±1% of max=10000 → window ≤ 201 (+1 for the candidate), and
		// clamping at 0 can shrink it.
		if width < 1 || width > 202 {
			t.Fatalf("window width %d out of expected envelope", width)
		}
		if pred.Lo < 0 {
			t.Fatalf("negative lower bound %d", pred.Lo)
		}
	}
}

func TestRangeGenCoversWholeDomain(t *testing.T) {
	// Under CandidateUniform, candidate values must span 0..max.
	tb := tbl(t, seq(1000)...)
	g := NewRangeGen(xrand.New(2), "a")
	g.Candidates = CandidateUniform
	lowSeen, highSeen := false, false
	for i := 0; i < 2000; i++ {
		pred, _ := g.Next(tb)
		if pred.Lo < 100 {
			lowSeen = true
		}
		if pred.Hi > 900 {
			highSeen = true
		}
	}
	if !lowSeen || !highSeen {
		t.Fatalf("candidates not spanning domain: low=%v high=%v", lowSeen, highSeen)
	}
}

func TestCandidateActiveFollowsRetainedData(t *testing.T) {
	// Forget all high values; active-candidate queries must centre on
	// the retained low values only.
	tb := tbl(t, seq(1000)...)
	for i := 500; i < 1000; i++ {
		tb.Forget(i)
	}
	g := NewRangeGen(xrand.New(20), "a")
	g.Candidates = CandidateActive
	for i := 0; i < 500; i++ {
		pred, ok := g.Next(tb)
		if !ok {
			t.Fatal("no predicate")
		}
		// centre = (lo+hi)/2; all candidates are < 500, window ±10.
		if pred.Lo > 500 {
			t.Fatalf("active candidate window [%d,%d) centred on forgotten value", pred.Lo, pred.Hi)
		}
	}
}

func TestCandidateStoredSeesForgotten(t *testing.T) {
	tb := tbl(t, seq(1000)...)
	for i := 0; i < 999; i++ {
		tb.Forget(i)
	}
	g := NewRangeGen(xrand.New(21), "a")
	g.Candidates = CandidateStored
	low := false
	for i := 0; i < 300; i++ {
		pred, _ := g.Next(tb)
		if pred.Lo < 400 {
			low = true
			break
		}
	}
	if !low {
		t.Fatal("stored candidates never visited forgotten values")
	}
}

func TestCandidateActiveNoActiveTuples(t *testing.T) {
	tb := tbl(t, 1, 2, 3)
	for i := 0; i < 3; i++ {
		tb.Forget(i)
	}
	g := NewRangeGen(xrand.New(22), "a")
	if _, ok := g.Next(tb); ok {
		t.Fatal("predicate generated with zero active tuples")
	}
}

func TestCandidateModeStrings(t *testing.T) {
	if CandidateActive.String() != "active" || CandidateStored.String() != "stored" ||
		CandidateUniform.String() != "uniform" {
		t.Fatal("mode strings wrong")
	}
}

func TestRangeGenEmptyTable(t *testing.T) {
	tb := table.New("t", "a")
	g := NewRangeGen(xrand.New(3), "a")
	if _, ok := g.Next(tb); ok {
		t.Fatal("predicate generated for empty table")
	}
}

func TestRangeGenSelectivityKnob(t *testing.T) {
	tb := tbl(t, seq(10001)...)
	g := NewRangeGen(xrand.New(4), "a")
	g.Selectivity = 0.5
	maxWidth := int64(0)
	for i := 0; i < 500; i++ {
		pred, _ := g.Next(tb)
		if w := pred.Hi - pred.Lo; w > maxWidth {
			maxWidth = w
		}
	}
	if maxWidth < 4000 {
		t.Fatalf("selectivity 0.5 produced max window %d; knob ignored", maxWidth)
	}
}

func TestAggGenUnpredicated(t *testing.T) {
	tb := tbl(t, 1, 2, 3)
	g := NewAggGen(xrand.New(5), "a", false)
	pred, ok := g.Next(tb)
	if !ok {
		t.Fatal("no aggregate predicate")
	}
	if _, isTrue := pred.(expr.True); !isTrue {
		t.Fatalf("unpredicated aggregate returned %T", pred)
	}
}

func TestAggGenPredicated(t *testing.T) {
	tb := tbl(t, seq(1000)...)
	g := NewAggGen(xrand.New(6), "a", true)
	pred, ok := g.Next(tb)
	if !ok {
		t.Fatal("no aggregate predicate")
	}
	if _, isRange := pred.(expr.Range); !isRange {
		t.Fatalf("predicated aggregate returned %T", pred)
	}
}

func TestRunRangeBatchFullDatabasePerfect(t *testing.T) {
	tb := tbl(t, seq(500)...)
	ex := engine.New(tb)
	b, err := RunRangeBatch(ex, NewRangeGen(xrand.New(7), "a"), 200)
	if err != nil {
		t.Fatal(err)
	}
	if b.Queries() != 200 {
		t.Fatalf("observed %d queries", b.Queries())
	}
	if b.MeanPrecision() != 1 {
		t.Fatalf("precision with no amnesia = %v", b.MeanPrecision())
	}
}

func TestRunRangeBatchDetectsAmnesia(t *testing.T) {
	tb := tbl(t, seq(500)...)
	for i := 0; i < 250; i++ {
		tb.Forget(i * 2)
	}
	ex := engine.New(tb)
	b, err := RunRangeBatch(ex, NewRangeGen(xrand.New(8), "a"), 300)
	if err != nil {
		t.Fatal(err)
	}
	p := b.MeanPrecision()
	if p < 0.3 || p > 0.7 {
		t.Fatalf("half-forgotten precision = %v, want ~0.5", p)
	}
}

func TestRunRangeBatchEmptyTableErrors(t *testing.T) {
	ex := engine.New(table.New("t", "a"))
	if _, err := RunRangeBatch(ex, NewRangeGen(xrand.New(9), "a"), 1); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestRunRangeBatchFeedsAccessCounts(t *testing.T) {
	tb := tbl(t, seq(100)...)
	ex := engine.New(tb)
	if _, err := RunRangeBatch(ex, NewRangeGen(xrand.New(10), "a"), 500); err != nil {
		t.Fatal(err)
	}
	touched := 0
	for i := 0; i < tb.Len(); i++ {
		if tb.AccessCount(i) > 0 {
			touched++
		}
	}
	if touched == 0 {
		t.Fatal("range workload did not feed access frequencies")
	}
}

func TestRunAggBatchNoAmnesiaZeroError(t *testing.T) {
	tb := tbl(t, seq(300)...)
	ex := engine.New(tb)
	b, err := RunAggBatch(ex, NewAggGen(xrand.New(11), "a", false), 50)
	if err != nil {
		t.Fatal(err)
	}
	if b.MeanAggregateError() != 0 || b.MeanPrecision() != 1 {
		t.Fatalf("no-amnesia agg: err=%v pf=%v", b.MeanAggregateError(), b.MeanPrecision())
	}
}

func TestRunAggBatchSkewedForgettingShiftsAvg(t *testing.T) {
	// Forget all high values: AVG over active must drift and the batch
	// must report a nonzero aggregate error.
	tb := tbl(t, seq(1000)...)
	for i := 500; i < 1000; i++ {
		tb.Forget(i)
	}
	ex := engine.New(tb)
	b, err := RunAggBatch(ex, NewAggGen(xrand.New(12), "a", false), 20)
	if err != nil {
		t.Fatal(err)
	}
	if b.MeanAggregateError() < 0.3 {
		t.Fatalf("aggregate error %v too small for half-forgotten data", b.MeanAggregateError())
	}
}

func TestRunAggBatchAllForgottenRange(t *testing.T) {
	// Predicated AVG where some ranges are fully forgotten must not
	// error out; it reports full miss instead.
	tb := tbl(t, seq(1000)...)
	for i := 0; i < 1000; i++ {
		tb.Forget(i)
	}
	ex := engine.New(tb)
	g := NewAggGen(xrand.New(13), "a", true)
	g.RangeGen().Candidates = CandidateStored
	b, err := RunAggBatch(ex, g, 50)
	if err != nil {
		t.Fatal(err)
	}
	if b.MeanPrecision() > 0.01 {
		t.Fatalf("fully forgotten table precision = %v", b.MeanPrecision())
	}
}
