package partition

import (
	"sync"
	"testing"

	"amnesiadb/internal/xrand"
)

func newSet(t *testing.T, n int, budget int) *Set {
	t.Helper()
	s, err := New("a", 1000, n, "uniform", budget, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	src := xrand.New(1)
	if _, err := New("a", 1000, 0, "uniform", 100, src); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := New("a", 0, 4, "uniform", 100, src); err == nil {
		t.Fatal("zero domain accepted")
	}
	if _, err := New("a", 1000, 4, "uniform", 2, src); err == nil {
		t.Fatal("budget below partition count accepted")
	}
	if _, err := New("a", 1000, 4, "bogus", 100, src); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestPartitionRangesCoverDomain(t *testing.T) {
	s := newSet(t, 4, 400)
	parts := s.Partitions()
	if len(parts) != 4 {
		t.Fatalf("partitions = %d", len(parts))
	}
	if parts[0].Lo != 0 || parts[len(parts)-1].Hi != 1000 {
		t.Fatalf("domain edges wrong: [%d, %d)", parts[0].Lo, parts[len(parts)-1].Hi)
	}
	for i := 1; i < len(parts); i++ {
		if parts[i].Lo != parts[i-1].Hi {
			t.Fatalf("gap between partitions %d and %d", i-1, i)
		}
	}
}

func TestInsertRoutesByValue(t *testing.T) {
	s := newSet(t, 4, 400)
	if err := s.Insert([]int64{10, 260, 510, 760, 20}); err != nil {
		t.Fatal(err)
	}
	parts := s.Partitions()
	wantCounts := []int{2, 1, 1, 1}
	for i, w := range wantCounts {
		if got := parts[i].Table().Len(); got != w {
			t.Fatalf("partition %d has %d tuples, want %d", i, got, w)
		}
	}
}

func TestInsertOutOfDomain(t *testing.T) {
	s := newSet(t, 2, 100)
	if err := s.Insert([]int64{1000}); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
	if err := s.Insert([]int64{-1}); err == nil {
		t.Fatal("negative value accepted")
	}
}

func TestPerPartitionBudgets(t *testing.T) {
	s := newSet(t, 2, 100) // 50 per shard
	vals := make([]int64, 400)
	for i := range vals {
		vals[i] = int64(i % 1000)
	}
	if err := s.Insert(vals); err != nil {
		t.Fatal(err)
	}
	for i, p := range s.Partitions() {
		if got := p.Table().ActiveCount(); got > 50 {
			t.Fatalf("partition %d active %d over budget 50", i, got)
		}
	}
	st := s.Stats()
	if st.Active > 100 {
		t.Fatalf("total active %d over total budget", st.Active)
	}
}

func TestSelectFansOut(t *testing.T) {
	s := newSet(t, 4, 400)
	if err := s.Insert([]int64{100, 300, 600, 900}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Select(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("full select returned %d", len(got))
	}
	got, err = s.Select(250, 650)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("partial select returned %v", got)
	}
}

func TestSelectCountsHitsOnlyOnIntersect(t *testing.T) {
	s := newSet(t, 4, 400)
	if err := s.Insert([]int64{100}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select(0, 100); err != nil {
		t.Fatal(err)
	}
	parts := s.Partitions()
	if parts[0].Hits() != 1 {
		t.Fatalf("partition 0 hits = %d", parts[0].Hits())
	}
	for i := 1; i < 4; i++ {
		if parts[i].Hits() != 0 {
			t.Fatalf("partition %d hits = %d, want 0", i, parts[i].Hits())
		}
	}
}

func TestPrecisionAcrossShards(t *testing.T) {
	s := newSet(t, 2, 2) // budget 1 per shard forces forgetting
	if err := s.Insert([]int64{100, 200, 600, 700}); err != nil {
		t.Fatal(err)
	}
	rf, mf, pf, err := s.Precision(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 2 || mf != 2 || pf != 0.5 {
		t.Fatalf("rf=%d mf=%d pf=%v", rf, mf, pf)
	}
}

func TestAdaptShiftsBudgetTowardHotShard(t *testing.T) {
	s := newSet(t, 4, 400)
	vals := make([]int64, 2000)
	src := xrand.New(9)
	for i := range vals {
		vals[i] = src.Int63n(1000)
	}
	if err := s.Insert(vals); err != nil {
		t.Fatal(err)
	}
	// Hammer shard 0's range.
	for i := 0; i < 50; i++ {
		if _, err := s.Select(0, 250); err != nil {
			t.Fatal(err)
		}
	}
	s.Adapt()
	parts := s.Partitions()
	if parts[0].Budget() <= parts[1].Budget() {
		t.Fatalf("hot shard budget %d not above cold %d", parts[0].Budget(), parts[1].Budget())
	}
	total := 0
	for _, p := range parts {
		total += p.Budget()
		if p.Table().ActiveCount() > p.Budget() {
			t.Fatalf("shard over budget after Adapt: %d > %d", p.Table().ActiveCount(), p.Budget())
		}
		if p.Hits() != 0 {
			t.Fatal("hits not reset")
		}
	}
	if total != 400 {
		t.Fatalf("total budget drifted to %d", total)
	}
}

func TestAdaptImprovesHotRangePrecision(t *testing.T) {
	// The §4.4 promise: adapting to the workload buys precision on the
	// hot range compared to static equal budgets.
	run := func(adapt bool) float64 {
		s, err := New("a", 1000, 4, "uniform", 400, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		src := xrand.New(4)
		for round := 0; round < 12; round++ {
			vals := make([]int64, 400)
			for i := range vals {
				vals[i] = src.Int63n(1000)
			}
			if err := s.Insert(vals); err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 20; q++ {
				if _, err := s.Select(0, 250); err != nil {
					t.Fatal(err)
				}
			}
			if adapt {
				s.Adapt()
			}
		}
		_, _, pf, err := s.Precision(0, 250)
		if err != nil {
			t.Fatal(err)
		}
		return pf
	}
	static, adaptive := run(false), run(true)
	if adaptive <= static {
		t.Fatalf("adaptive precision %.3f not above static %.3f", adaptive, static)
	}
}

// TestSelectParallelFanOutEquivalence pins the acceptance criterion: the
// concurrent shard fan-out returns byte-identical results to the serial
// one, across full-domain and partial-range queries.
func TestSelectParallelFanOutEquivalence(t *testing.T) {
	build := func(par int) *Set {
		s, err := New("a", 1000, 8, "uniform", 800, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		s.SetParallelism(par)
		vals := make([]int64, 5000)
		src := xrand.New(6)
		for i := range vals {
			vals[i] = src.Int63n(1000)
		}
		if err := s.Insert(vals); err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial, parallel := build(1), build(4)
	for _, r := range [][2]int64{{0, 1000}, {250, 650}, {10, 20}, {990, 995}} {
		want, err := serial.Select(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := parallel.Select(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("range %v: %d vs %d values", r, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("range %v: value %d diverges: %d vs %d", r, i, want[i], got[i])
			}
		}
		rf1, mf1, pf1, err := serial.Precision(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		rf4, mf4, pf4, err := parallel.Precision(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		if rf1 != rf4 || mf1 != mf4 || pf1 != pf4 {
			t.Fatalf("range %v: precision diverges: (%d,%d,%v) vs (%d,%d,%v)", r, rf1, mf1, pf1, rf4, mf4, pf4)
		}
	}
}

// TestConcurrentInsertAdapt is the regression for the Adapt/Insert budget
// race: Adapt used to rewrite p.Budget and forget tuples with no
// synchronisation against Insert's budget enforcement. Run under -race.
func TestConcurrentInsertAdapt(t *testing.T) {
	s, err := New("a", 1000, 4, "uniform", 400, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	s.SetParallelism(2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := xrand.New(uint64(100 + g))
			for i := 0; i < 50; i++ {
				vals := make([]int64, 40)
				for j := range vals {
					vals[j] = src.Int63n(1000)
				}
				if err := s.Insert(vals); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Adapt()
		}
	}()
	wg.Wait()
	total := 0
	for _, p := range s.Partitions() {
		total += p.Budget()
	}
	if total != 400 {
		t.Fatalf("total budget drifted to %d", total)
	}
	// One final enforcement pass: a shard may legitimately sit over
	// budget if its last Insert landed after the last Adapt shrank it,
	// but budgets must be consistent once the dust settles.
	s.Adapt()
	for i, p := range s.Partitions() {
		if p.Table().ActiveCount() > p.Budget() {
			t.Fatalf("shard %d over budget: %d > %d", i, p.Table().ActiveCount(), p.Budget())
		}
	}
}
