package partition

// Regression tests for the context-threaded fan-out: the ctxflow
// analyzer flagged the shard fan-out for dropping the request context,
// and the fix (fanOut over engine.ForEachTaskCtx) must make a canceled
// context win over shard work.

import (
	"context"
	"errors"
	"testing"

	"amnesiadb/internal/expr"
)

func TestFanOutHonorsCanceledContext(t *testing.T) {
	s := newSet(t, 4, 400)
	if err := s.Insert([]int64{10, 260, 510, 760}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pred := expr.NewRange(0, 1000)

	if _, err := s.ScanChunksCtx(ctx, pred); !errors.Is(err, context.Canceled) {
		t.Errorf("ScanChunksCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := s.AggregateExprCtx(ctx, pred); !errors.Is(err, context.Canceled) {
		t.Errorf("AggregateExprCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, _, err := s.PrecisionExprCtx(ctx, pred); !errors.Is(err, context.Canceled) {
		t.Errorf("PrecisionExprCtx on canceled ctx: err = %v, want context.Canceled", err)
	}

	// The ctx-less compat entries must keep working unchanged.
	if _, err := s.ScanChunks(pred); err != nil {
		t.Errorf("ScanChunks without ctx: %v", err)
	}
	if _, err := s.AggregateExpr(pred); err != nil {
		t.Errorf("AggregateExpr without ctx: %v", err)
	}
}
