// Package partition implements §4.4's closing proposal: "it might be
// worth to study amnesia in the context of adaptive partitioning. Each
// partition can then be tuned to provide the best precision for a subset
// of the workload."
//
// A Set splits one logical attribute domain into contiguous value-range
// partitions, each holding its own table, amnesia strategy and budget.
// Inserts are routed by value; queries fan out to the partitions whose
// ranges intersect the predicate. Adapt() rebalances the budgets toward
// the partitions the workload actually queries, which is the "tuned to
// provide the best precision for a subset of the workload" loop.
package partition

import (
	"fmt"
	"sort"
	"sync/atomic"

	"amnesiadb/internal/amnesia"
	"amnesiadb/internal/engine"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// Partition is one value-range shard.
type Partition struct {
	// Lo and Hi bound the shard's value range [Lo, Hi).
	Lo, Hi int64
	// Budget is the shard's active-tuple allowance.
	Budget int

	tbl   *table.Table
	ex    *engine.Exec
	strat amnesia.Strategy
	// hits counts queries that touched this shard since the last Adapt.
	// It is atomic so concurrent readers can record workload feedback
	// without the set's exclusive lock.
	hits   atomic.Int64
	column string
}

// Table exposes the shard's underlying table (read-only use).
func (p *Partition) Table() *table.Table { return p.tbl }

// Hits returns the query count since the last Adapt.
func (p *Partition) Hits() int64 { return p.hits.Load() }

// Set is a partitioned single-column store with per-partition amnesia.
type Set struct {
	column string
	parts  []*Partition
	src    *xrand.Source
}

// New builds a Set over [0, domain) split into n equal-width partitions,
// each with the given strategy and an equal share of totalBudget.
func New(column string, domain int64, n int, strategy string, totalBudget int, src *xrand.Source) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: need at least one partition, got %d", n)
	}
	if domain <= 0 {
		return nil, fmt.Errorf("partition: domain %d must be positive", domain)
	}
	if totalBudget < n {
		return nil, fmt.Errorf("partition: budget %d below one tuple per partition", totalBudget)
	}
	s := &Set{column: column, src: src}
	width := (domain + int64(n) - 1) / int64(n)
	for i := 0; i < n; i++ {
		lo := int64(i) * width
		hi := lo + width
		if hi > domain {
			hi = domain
		}
		tbl := table.New(fmt.Sprintf("p%d", i), column)
		strat, err := amnesia.New(strategy, column, src.Split())
		if err != nil {
			return nil, err
		}
		s.parts = append(s.parts, &Partition{
			Lo: lo, Hi: hi,
			Budget: totalBudget / n,
			tbl:    tbl,
			ex:     engine.New(tbl),
			strat:  strat,
			column: column,
		})
	}
	return s, nil
}

// Partitions returns the shards in value order.
func (s *Set) Partitions() []*Partition { return s.parts }

// SetParallelism stamps the engine's intra-query parallelism knob onto
// every shard executor (0 auto, 1 serial, n > 1 forced workers), so a
// partitioned query parallelises within each shard it fans out to.
// Configure before serving concurrent queries.
func (s *Set) SetParallelism(n int) {
	for _, p := range s.parts {
		p.ex.SetParallelism(n)
	}
}

// locate returns the shard owning value v.
func (s *Set) locate(v int64) (*Partition, error) {
	i := sort.Search(len(s.parts), func(i int) bool { return v < s.parts[i].Hi })
	if i == len(s.parts) || v < s.parts[i].Lo {
		return nil, fmt.Errorf("partition: value %d outside domain", v)
	}
	return s.parts[i], nil
}

// Insert routes a batch of values to their shards and enforces each
// affected shard's budget.
func (s *Set) Insert(vals []int64) error {
	byPart := make(map[*Partition][]int64)
	for _, v := range vals {
		p, err := s.locate(v)
		if err != nil {
			return err
		}
		byPart[p] = append(byPart[p], v)
	}
	for p, vs := range byPart {
		if _, err := p.tbl.AppendSingleColumn(vs); err != nil {
			return err
		}
		if over := p.tbl.ActiveCount() - p.Budget; over > 0 {
			p.strat.Forget(p.tbl, over)
		}
	}
	return nil
}

// Select returns matching active values across all shards intersecting
// [lo, hi), recording per-shard workload hits for Adapt. Like the flat
// engine's scans, Select is safe for concurrent readers: hit counters
// are atomic and the per-shard executors touch access frequencies
// through the table's internal synchronisation.
func (s *Set) Select(lo, hi int64) ([]int64, error) {
	var out []int64
	for _, p := range s.parts {
		if p.Hi <= lo || p.Lo >= hi {
			continue
		}
		p.hits.Add(1)
		res, err := p.ex.Select(s.column, expr.NewRange(lo, hi), engine.ScanActive)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Values...)
	}
	return out, nil
}

// Precision aggregates the §2.3 metrics across the shards that intersect
// [lo, hi).
func (s *Set) Precision(lo, hi int64) (rf, mf int, pf float64, err error) {
	for _, p := range s.parts {
		if p.Hi <= lo || p.Lo >= hi {
			continue
		}
		r, m, _, err := p.ex.Precision(s.column, expr.NewRange(lo, hi))
		if err != nil {
			return 0, 0, 0, err
		}
		rf += r
		mf += m
	}
	if rf+mf == 0 {
		return 0, 0, 1, nil
	}
	return rf, mf, float64(rf) / float64(rf+mf), nil
}

// Stats sums tuple counts over all shards.
func (s *Set) Stats() table.Stats {
	var out table.Stats
	for _, p := range s.parts {
		st := p.tbl.Stats()
		out.Tuples += st.Tuples
		out.Active += st.Active
		out.Forgotten += st.Forgotten
		out.Batches += st.Batches
	}
	return out
}

// Adapt reallocates the total budget proportionally to each shard's query
// hits since the last call (plus one smoothing hit each, so unqueried
// shards keep a trickle), then enforces the new budgets and resets the
// counters. This is the adaptive loop of §4.4: hot partitions grow, cold
// ones shrink, and precision follows the workload.
func (s *Set) Adapt() {
	total := 0
	var weight int64
	for _, p := range s.parts {
		total += p.Budget
		weight += p.hits.Load() + 1
	}
	remaining := total
	for i, p := range s.parts {
		var share int
		if i == len(s.parts)-1 {
			share = remaining // avoid rounding loss
		} else {
			share = int(int64(total) * (p.hits.Load() + 1) / weight)
			if share < 1 {
				share = 1
			}
			if share > remaining-(len(s.parts)-1-i) {
				share = remaining - (len(s.parts) - 1 - i)
			}
		}
		remaining -= share
		p.Budget = share
		p.hits.Store(0)
		if over := p.tbl.ActiveCount() - p.Budget; over > 0 {
			p.strat.Forget(p.tbl, over)
		}
	}
}
