// Package partition implements §4.4's closing proposal: "it might be
// worth to study amnesia in the context of adaptive partitioning. Each
// partition can then be tuned to provide the best precision for a subset
// of the workload."
//
// A Set splits one logical attribute domain into contiguous value-range
// partitions, each holding its own table, amnesia strategy and budget.
// Inserts are routed by value; queries fan out to the partitions whose
// ranges intersect the predicate — concurrently, since shards are
// independent tables (see SetParallelism). Adapt() rebalances the
// budgets toward the partitions the workload actually queries, which is
// the "tuned to provide the best precision for a subset of the workload"
// loop. Budgets are atomic and each shard serialises its own mutation,
// so Adapt can run online, interleaved with Inserts.
//
// Sets are also SQL citizens: ScanChunks, AggregateExpr and
// PrecisionExpr take arbitrary single-attribute predicates (pruning the
// fan-out by the predicate's bounding interval), which is what the SQL
// layer's PartitionRelation adapter serves the catalog with.
package partition

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"amnesiadb/internal/amnesia"
	"amnesiadb/internal/engine"
	"amnesiadb/internal/engine/sched"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/lockrank"
	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

// Partition is one value-range shard.
type Partition struct {
	// Lo and Hi bound the shard's value range [Lo, Hi).
	Lo, Hi int64

	// budget is the shard's active-tuple allowance. It is atomic because
	// Adapt rewrites it while Insert's budget enforcement reads it; see
	// Budget.
	budget atomic.Int64
	// mu serialises mutation of the shard's table — Insert's
	// append-and-forget and Adapt's forget — so budget enforcement from
	// the two paths cannot interleave mid-shard.
	mu lockrank.Shard

	tbl   *table.Table
	ex    *engine.Exec
	strat amnesia.Strategy
	// hits counts queries that touched this shard since the last Adapt.
	// It is atomic so concurrent readers can record workload feedback
	// without the set's exclusive lock.
	hits   atomic.Int64
	column string
}

// Table exposes the shard's underlying table (read-only use).
func (p *Partition) Table() *table.Table { return p.tbl }

// Hits returns the query count since the last Adapt.
func (p *Partition) Hits() int64 { return p.hits.Load() }

// Budget returns the shard's active-tuple allowance. It is safe to read
// while Adapt rebalances concurrently.
func (p *Partition) Budget() int { return int(p.budget.Load()) }

// enforceBudgetLocked forgets the shard down to its current budget; the
// caller must hold p.mu. Insert and Adapt both enforce through this one
// body so the two paths cannot drift.
func (p *Partition) enforceBudgetLocked() {
	if over := p.tbl.ActiveCount() - p.Budget(); over > 0 {
		p.strat.Forget(p.tbl, over)
	}
}

// enforceBudget is enforceBudgetLocked under the shard mutation lock.
func (p *Partition) enforceBudget() {
	p.mu.Lock()
	p.enforceBudgetLocked()
	p.mu.Unlock()
}

// Set is a partitioned single-column store with per-partition amnesia.
type Set struct {
	column string
	// domain and strategy echo the construction parameters so the
	// durability layer can log DDL and snapshot the set faithfully.
	domain   int64
	strategy string
	parts    []*Partition
	src      *xrand.Source
	// par is the fan-out parallelism knob; see SetParallelism.
	par int
	// sched, when non-nil, dispatches fan-outs and shard scans through
	// a shared worker pool; see SetScheduler.
	sched *sched.Pool
}

// New builds a Set over [0, domain) split into n equal-width partitions,
// each with the given strategy and an equal share of totalBudget.
func New(column string, domain int64, n int, strategy string, totalBudget int, src *xrand.Source) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("partition: need at least one partition, got %d", n)
	}
	if domain <= 0 {
		return nil, fmt.Errorf("partition: domain %d must be positive", domain)
	}
	if totalBudget < n {
		return nil, fmt.Errorf("partition: budget %d below one tuple per partition", totalBudget)
	}
	s := &Set{column: column, domain: domain, strategy: strategy, src: src}
	width := (domain + int64(n) - 1) / int64(n)
	for i := 0; i < n; i++ {
		lo := int64(i) * width
		hi := lo + width
		if hi > domain {
			hi = domain
		}
		tbl := table.New(fmt.Sprintf("p%d", i), column)
		strat, err := amnesia.New(strategy, column, src.Split())
		if err != nil {
			return nil, err
		}
		p := &Partition{
			Lo: lo, Hi: hi,
			tbl:    tbl,
			ex:     engine.New(tbl),
			strat:  strat,
			column: column,
		}
		p.budget.Store(int64(totalBudget / n))
		s.parts = append(s.parts, p)
	}
	return s, nil
}

// Partitions returns the shards in value order.
func (s *Set) Partitions() []*Partition { return s.parts }

// Column returns the name of the set's single stored attribute.
func (s *Set) Column() string { return s.column }

// Domain returns the upper bound of the set's value domain [0, Domain).
func (s *Set) Domain() int64 { return s.domain }

// Strategy returns the per-shard amnesia strategy name the set was
// built with.
func (s *Set) Strategy() string { return s.strategy }

// SetParallelism sets the fan-out parallelism (0 auto = GOMAXPROCS,
// 1 serial, n > 1 forced) and stamps the same knob onto every shard
// executor. Shards are independent tables, so a partitioned query runs
// its per-shard scans concurrently. The two levels never multiply: a
// query fanning out to several shards runs each shard's scan serially
// (the fan-out itself saturates the cores), while a query confined to
// one shard parallelises inside it with the stamped knob. Configure
// before serving concurrent queries.
func (s *Set) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	s.par = n
	for _, p := range s.parts {
		p.ex.SetParallelism(n)
	}
}

// SetScheduler routes the set's fan-outs and every shard executor
// through a shared worker pool (nil restores spawn-per-query), so
// partitioned queries compete fair-share with everything else on the
// pool. Configure before serving concurrent queries, like
// SetParallelism.
func (s *Set) SetScheduler(p *sched.Pool) {
	s.sched = p
	for _, part := range s.parts {
		part.ex.SetScheduler(p)
	}
}

// Epoch sums the shard tables' mutation epochs: any insert, forget,
// remember or vacuum anywhere in the set changes the sum, so it plays
// the same result-cache role as a flat table's epoch. Monotonic
// because every term is.
func (s *Set) Epoch() uint64 {
	var e uint64
	for _, p := range s.parts {
		e += p.tbl.Epoch()
	}
	return e
}

// FanWorkers resolves the parallelism knob to the worker count a
// fan-out over n shards actually runs with. Unlike engine.Workers there
// is no row threshold: a shard is a coarse unit of work, so any
// multi-shard fan-out is worth spreading. Exported so the bench CLI
// reports the same resolution the queries use.
func (s *Set) FanWorkers(n int) int {
	w := n
	switch {
	case s.par == 1 || n <= 1:
		return 1
	case s.par > 1:
		if s.par < w {
			w = s.par
		}
	default:
		if g := runtime.GOMAXPROCS(0); g < w {
			w = g
		}
	}
	// A fan-out wider than the shared pool would oversubscribe it the
	// same way a forced scan parallelism would; clamp to pool width.
	if s.sched != nil && w > s.sched.Size() {
		w = s.sched.Size()
	}
	return w
}

// fanOut runs fn over every shard in hit — concurrently up to the
// parallelism knob — handing each call the executor shardExec picks for
// this fan-out width, and returns the first error in shard order. A
// cancelled ctx skips shards not yet started and reports ctx.Err(),
// which outranks shard errors (partial fan-outs have no meaningful
// first error). Both Select and Precision schedule through this one
// scaffold.
func (s *Set) fanOut(ctx context.Context, hit []*Partition, fn func(i int, ex *engine.Exec) error) error {
	errs := make([]error, len(hit))
	w := s.FanWorkers(len(hit))
	if err := engine.ForEachTaskCtx(ctx, s.sched, w, len(hit), func(i int) {
		errs[i] = fn(i, s.shardExec(hit[i], w))
	}); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shardExec picks the executor for one shard of a fan-out over workers
// concurrent shards: the shard's stamped executor when the fan-out is
// serial (single-shard queries keep their intra-shard parallelism), a
// throwaway serial one when several shards already run concurrently —
// nesting morsel workers inside a concurrent fan-out would oversubscribe
// the cores quadratically. Results are identical either way; only the
// scheduling changes.
func (s *Set) shardExec(p *Partition, workers int) *engine.Exec {
	if workers <= 1 {
		return p.ex
	}
	ex := engine.New(p.tbl)
	ex.SetParallelism(1)
	return ex
}

// intersecting returns the shards overlapping [lo, hi) in value order.
func (s *Set) intersecting(lo, hi int64) []*Partition {
	var out []*Partition
	for _, p := range s.parts {
		if p.Hi <= lo || p.Lo >= hi {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Insert routes a batch of values to their shards and enforces each
// affected shard's budget. Each shard's append-and-forget runs under the
// shard's mutation lock, so Insert may interleave with a concurrent
// Adapt.
func (s *Set) Insert(vals []int64) error { return s.InsertObserved(vals, nil) }

// InsertObserved is Insert with a mutation observer: after each shard's
// append-and-enforce commits, obs receives the shard index, the values
// appended there, and the positions the budget enforcement forgot
// (captured by diffing the active bitmap, since strategies choose
// stochastically). The durability layer turns one call into one WAL
// record that replays bit-for-bit without re-running the strategy. A
// nil obs makes it plain Insert.
func (s *Set) InsertObserved(vals []int64, obs func(shard int, appended []int64, forgotten []int)) error {
	byShard := make(map[int][]int64)
	for _, v := range vals {
		i, err := s.locateIdx(v)
		if err != nil {
			return err
		}
		byShard[i] = append(byShard[i], v)
	}
	var words []uint64
	for i, vs := range byShard {
		p := s.parts[i]
		p.mu.Lock()
		var oldLen int
		if obs != nil {
			words, oldLen = p.tbl.ActiveSnapshot(words[:0])
		}
		_, err := p.tbl.AppendSingleColumn(vs)
		if err == nil {
			p.enforceBudgetLocked()
			if obs != nil {
				obs(i, vs, p.tbl.ForgottenSince(words, oldLen))
			}
		}
		p.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// ReplayShard applies a logged shard mutation: append the values, then
// forget exactly the logged positions — no routing, no budget
// enforcement, no strategy. Replaying a set's records in log order
// reproduces its tuple state bit-for-bit.
func (s *Set) ReplayShard(shard int, appended []int64, forgotten []int) error {
	if shard < 0 || shard >= len(s.parts) {
		return fmt.Errorf("partition: shard %d outside set of %d", shard, len(s.parts))
	}
	p := s.parts[shard]
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(appended) > 0 {
		if _, err := p.tbl.AppendSingleColumn(appended); err != nil {
			return err
		}
	}
	for _, pos := range forgotten {
		if pos < 0 || pos >= p.tbl.Len() {
			return fmt.Errorf("partition: replay position %d outside shard of %d tuples", pos, p.tbl.Len())
		}
		p.tbl.Forget(pos)
	}
	return nil
}

// SetShardBudget overwrites one shard's budget without enforcing it,
// for replaying logged Adapt outcomes.
func (s *Set) SetShardBudget(shard, budget int) error {
	if shard < 0 || shard >= len(s.parts) {
		return fmt.Errorf("partition: shard %d outside set of %d", shard, len(s.parts))
	}
	s.parts[shard].budget.Store(int64(budget))
	return nil
}

// AdvanceEpoch jumps the set's summed mutation epoch forward by delta
// (applied to the first shard; Epoch sums shard epochs). See
// table.AdvanceEpoch for why incarnations need disjoint epoch ranges.
func (s *Set) AdvanceEpoch(delta uint64) { s.parts[0].tbl.AdvanceEpoch(delta) }

// RestoredShard is one shard's snapshotted state handed to Restore.
type RestoredShard struct {
	Lo, Hi int64
	Budget int
	Table  *table.Table
}

// Restore rebuilds a Set from snapshotted shards: ranges, budgets and
// tuple stores come from the snapshot verbatim; fresh strategy
// instances are built from the recorded name (their RNG state is not
// durable — the WAL logs forget outcomes, so replay never consults
// them).
func Restore(column string, domain int64, strategy string, shards []RestoredShard, src *xrand.Source) (*Set, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("partition: restore with no shards")
	}
	s := &Set{column: column, domain: domain, strategy: strategy, src: src}
	for _, sh := range shards {
		strat, err := amnesia.New(strategy, column, src.Split())
		if err != nil {
			return nil, err
		}
		p := &Partition{
			Lo: sh.Lo, Hi: sh.Hi,
			tbl:    sh.Table,
			ex:     engine.New(sh.Table),
			strat:  strat,
			column: column,
		}
		p.budget.Store(int64(sh.Budget))
		s.parts = append(s.parts, p)
	}
	return s, nil
}

// locateIdx returns the index of the shard owning value v.
func (s *Set) locateIdx(v int64) (int, error) {
	i := sort.Search(len(s.parts), func(i int) bool { return v < s.parts[i].Hi })
	if i == len(s.parts) || v < s.parts[i].Lo {
		return 0, fmt.Errorf("partition: value %d outside domain", v)
	}
	return i, nil
}

// ScanChunks returns the active tuples matching pred as one chunk per
// intersecting shard, in value-range order — the chunked form the SQL
// catalog streams from. The predicate's bounding interval prunes the
// fan-out to the shards it can touch; per-shard scans run concurrently
// up to the parallelism knob, each recording a workload hit for Adapt.
// Chunk positions are nil: they would be shard-local and mean nothing
// globally, so partitioned results project by value. Concatenating the
// chunk values yields exactly Select's output.
func (s *Set) ScanChunks(pred expr.Expr) ([]engine.SelChunk, error) {
	//lint:ignore ctxflow ScanChunks is the public ctx-less compat entry; request paths use ScanChunksCtx.
	return s.ScanChunksCtx(context.Background(), pred)
}

// ScanChunksCtx is ScanChunks with request-scoped cancellation: a
// cancelled ctx abandons shards not yet started and returns ctx.Err().
func (s *Set) ScanChunksCtx(ctx context.Context, pred expr.Expr) ([]engine.SelChunk, error) {
	lo, hi, _ := pred.Bounds()
	hit := s.intersecting(lo, hi)
	chunks := make([]engine.SelChunk, len(hit))
	err := s.fanOut(ctx, hit, func(i int, ex *engine.Exec) error {
		hit[i].hits.Add(1)
		res, err := ex.Select(s.column, pred, engine.ScanActive)
		if err != nil {
			return err
		}
		chunks[i] = engine.SelChunk{Values: res.Values}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return chunks, nil
}

// ScanChunkStream is the pipelined form of ScanChunks: per-shard scans
// fan out concurrently and each shard's qualifying values are emitted —
// strictly in value-range order — over the stream's bounded channel as
// soon as the shard finishes, so a consumer sees the first shard's rows
// while later shards are still scanning. Empty shards emit nothing.
// Concatenating the streamed chunks yields exactly ScanChunks' output;
// cancelling ctx (or closing the stream) abandons the remaining shards.
func (s *Set) ScanChunkStream(ctx context.Context, pred expr.Expr) (*engine.ChunkStream, error) {
	lo, hi, _ := pred.Bounds()
	hit := s.intersecting(lo, hi)
	w := s.FanWorkers(len(hit))
	return engine.NewChunkPipelineSched(ctx, s.sched, w, len(hit), func(i int) ([]engine.SelChunk, error) {
		hit[i].hits.Add(1)
		res, err := s.shardExec(hit[i], w).Select(s.column, pred, engine.ScanActive)
		if err != nil {
			return nil, err
		}
		if len(res.Values) == 0 {
			return nil, nil
		}
		return []engine.SelChunk{{Values: res.Values}}, nil
	}), nil
}

// Select returns matching active values across all shards intersecting
// [lo, hi), recording per-shard workload hits for Adapt. Shards are
// independent tables, so the per-shard scans run concurrently up to the
// parallelism knob; per-shard results land in per-shard slots
// concatenated in value order, so the output is byte-identical to the
// serial fan-out. Like the flat engine's scans, Select is safe for
// concurrent readers: hit counters are atomic and the per-shard
// executors touch access frequencies through the table's internal
// synchronisation.
func (s *Set) Select(lo, hi int64) ([]int64, error) {
	chunks, err := s.ScanChunks(expr.NewRange(lo, hi))
	if err != nil {
		return nil, err
	}
	total := 0
	for _, c := range chunks {
		total += len(c.Values)
	}
	if total == 0 {
		return nil, nil
	}
	out := make([]int64, 0, total)
	for _, c := range chunks {
		out = append(out, c.Values...)
	}
	return out, nil
}

// AggregateExpr folds the single attribute under pred across the
// intersecting shards in one concurrent fan-out, merging the per-shard
// partials exactly (sums, counts and min/max are order-independent).
// Shards whose qualifying set is empty contribute nothing; when every
// shard is empty it returns engine.ErrNoRows like the flat engine.
// Each touched shard records a workload hit, so SQL aggregates feed
// Adapt like selects do.
func (s *Set) AggregateExpr(pred expr.Expr) (*engine.AggResult, error) {
	//lint:ignore ctxflow AggregateExpr is the public ctx-less compat entry; request paths use AggregateExprCtx.
	return s.AggregateExprCtx(context.Background(), pred)
}

// AggregateExprCtx is AggregateExpr with request-scoped cancellation: a
// cancelled ctx abandons shards not yet started and returns ctx.Err().
func (s *Set) AggregateExprCtx(ctx context.Context, pred expr.Expr) (*engine.AggResult, error) {
	lo, hi, _ := pred.Bounds()
	hit := s.intersecting(lo, hi)
	partials := make([]*engine.AggResult, len(hit))
	err := s.fanOut(ctx, hit, func(i int, ex *engine.Exec) error {
		hit[i].hits.Add(1)
		a, err := ex.Aggregate(s.column, pred, engine.ScanActive)
		if errors.Is(err, engine.ErrNoRows) {
			return nil
		}
		if err != nil {
			return err
		}
		partials[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &engine.AggResult{Min: math.MaxInt64, Max: math.MinInt64}
	for _, p := range partials {
		if p == nil {
			continue
		}
		out.Rows += p.Rows
		out.Sum += p.Sum
		if p.Min < out.Min {
			out.Min = p.Min
		}
		if p.Max > out.Max {
			out.Max = p.Max
		}
	}
	if out.Rows == 0 {
		return nil, engine.ErrNoRows
	}
	out.Avg = float64(out.Sum) / float64(out.Rows)
	return out, nil
}

// PrecisionExpr aggregates the §2.3 metrics for pred across the shards
// its bounding interval touches, running the per-shard precision scans
// concurrently like Select. Metrics do not record workload hits, so
// measuring precision never perturbs Adapt.
func (s *Set) PrecisionExpr(pred expr.Expr) (rf, mf int, pf float64, err error) {
	//lint:ignore ctxflow PrecisionExpr is the public ctx-less compat entry; request paths use PrecisionExprCtx.
	return s.PrecisionExprCtx(context.Background(), pred)
}

// PrecisionExprCtx is PrecisionExpr with request-scoped cancellation: a
// cancelled ctx abandons shards not yet started and returns ctx.Err().
func (s *Set) PrecisionExprCtx(ctx context.Context, pred expr.Expr) (rf, mf int, pf float64, err error) {
	lo, hi, _ := pred.Bounds()
	hit := s.intersecting(lo, hi)
	rfs := make([]int, len(hit))
	mfs := make([]int, len(hit))
	ferr := s.fanOut(ctx, hit, func(i int, ex *engine.Exec) error {
		r, m, _, err := ex.Precision(s.column, pred)
		if err != nil {
			return err
		}
		rfs[i], mfs[i] = r, m
		return nil
	})
	if ferr != nil {
		return 0, 0, 0, ferr
	}
	for i := range hit {
		rf += rfs[i]
		mf += mfs[i]
	}
	if rf+mf == 0 {
		return 0, 0, 1, nil
	}
	return rf, mf, float64(rf) / float64(rf+mf), nil
}

// Precision aggregates the §2.3 metrics across the shards that intersect
// [lo, hi); see PrecisionExpr.
func (s *Set) Precision(lo, hi int64) (rf, mf int, pf float64, err error) {
	return s.PrecisionExpr(expr.NewRange(lo, hi))
}

// Stats sums tuple counts over all shards.
func (s *Set) Stats() table.Stats {
	var out table.Stats
	for _, p := range s.parts {
		st := p.tbl.Stats()
		out.Tuples += st.Tuples
		out.Active += st.Active
		out.Forgotten += st.Forgotten
		out.Batches += st.Batches
	}
	return out
}

// Adapt reallocates the total budget proportionally to each shard's query
// hits since the last call (plus one smoothing hit each, so unqueried
// shards keep a trickle), then enforces the new budgets and resets the
// counters. This is the adaptive loop of §4.4: hot partitions grow, cold
// ones shrink, and precision follows the workload. Hits are snapshotted
// once so shares stay consistent under concurrent Selects, and each
// shard's forget runs under its mutation lock, so Adapt can run online,
// interleaved with Inserts.
func (s *Set) Adapt() { s.AdaptObserved(nil) }

// AdaptObserved is Adapt with a mutation observer: after each shard's
// budget is rewritten and enforced, obs receives the shard index, the
// new budget, and the positions enforcement forgot — one WAL record's
// worth of replayable outcome per shard. A nil obs makes it plain
// Adapt.
func (s *Set) AdaptObserved(obs func(shard, budget int, forgotten []int)) {
	total := 0
	var weight int64
	snap := make([]int64, len(s.parts))
	for i, p := range s.parts {
		total += p.Budget()
		snap[i] = p.hits.Load() + 1
		weight += snap[i]
	}
	remaining := total
	var words []uint64
	for i, p := range s.parts {
		var share int
		if i == len(s.parts)-1 {
			share = remaining // avoid rounding loss
		} else {
			share = int(int64(total) * snap[i] / weight)
			if share < 1 {
				share = 1
			}
			if share > remaining-(len(s.parts)-1-i) {
				share = remaining - (len(s.parts) - 1 - i)
			}
		}
		remaining -= share
		p.budget.Store(int64(share))
		p.hits.Store(0)
		p.mu.Lock()
		var oldLen int
		if obs != nil {
			words, oldLen = p.tbl.ActiveSnapshot(words[:0])
		}
		p.enforceBudgetLocked()
		if obs != nil {
			obs(i, share, p.tbl.ForgottenSince(words, oldLen))
		}
		p.mu.Unlock()
	}
}
