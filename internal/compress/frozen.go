package compress

import (
	"fmt"
	"math"
)

// FrozenColumn is an immutable, block-compressed copy of a column region.
// It is the mechanism behind §4.4's "data compression can be called upon
// to postpone the decisions to forget data": instead of dropping cold
// tuples, a table region is frozen into a fraction of its original
// footprint while staying randomly accessible (block granularity) and
// range-scannable via retained zone maps.
type FrozenColumn struct {
	codec     Codec
	blockSize int
	blocks    [][]byte
	mins      []int64
	maxs      []int64
	n         int
}

// DefaultFrozenBlockSize balances compression ratio against random-access
// decompression cost.
const DefaultFrozenBlockSize = 4096

// Freeze compresses vals into a FrozenColumn using codec (Auto{} when
// nil) and the given block size (DefaultFrozenBlockSize when <= 0).
func Freeze(vals []int64, codec Codec, blockSize int) *FrozenColumn {
	if codec == nil {
		codec = Auto{}
	}
	if blockSize <= 0 {
		blockSize = DefaultFrozenBlockSize
	}
	f := &FrozenColumn{codec: codec, blockSize: blockSize, n: len(vals)}
	for start := 0; start < len(vals); start += blockSize {
		end := start + blockSize
		if end > len(vals) {
			end = len(vals)
		}
		blk := vals[start:end]
		min, max := blk[0], blk[0]
		for _, v := range blk {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		f.blocks = append(f.blocks, codec.Compress(nil, blk))
		f.mins = append(f.mins, min)
		f.maxs = append(f.maxs, max)
	}
	return f
}

// Len returns the number of frozen values.
func (f *FrozenColumn) Len() int { return f.n }

// CompressedBytes returns the compressed payload size (excluding the
// small per-block metadata).
func (f *FrozenColumn) CompressedBytes() int {
	total := 0
	for _, b := range f.blocks {
		total += len(b)
	}
	return total
}

// Ratio returns raw bytes / compressed bytes.
func (f *FrozenColumn) Ratio() float64 {
	cb := f.CompressedBytes()
	if cb == 0 {
		return 1
	}
	return float64(f.n*8) / float64(cb)
}

// Get returns the value at position i, decompressing one block.
func (f *FrozenColumn) Get(i int) (int64, error) {
	if i < 0 || i >= f.n {
		return 0, fmt.Errorf("compress: frozen index %d out of range [0, %d)", i, f.n)
	}
	blk := i / f.blockSize
	vals, err := f.codec.Decompress(nil, f.blocks[blk])
	if err != nil {
		return 0, err
	}
	return vals[i%f.blockSize], nil
}

// ScanRange appends the positions of frozen values v with lo <= v < hi to
// sel, skipping blocks via the retained zone maps.
func (f *FrozenColumn) ScanRange(lo, hi int64, sel []int32) ([]int32, error) {
	for b := range f.blocks {
		if f.maxs[b] < lo || f.mins[b] >= hi {
			continue
		}
		vals, err := f.codec.Decompress(nil, f.blocks[b])
		if err != nil {
			return nil, err
		}
		base := b * f.blockSize
		for i, v := range vals {
			if v >= lo && v < hi {
				sel = append(sel, int32(base+i))
			}
		}
	}
	return sel, nil
}

// Aggregate computes count/sum/min/max over frozen values in [lo, hi).
// ok is false when nothing qualifies.
func (f *FrozenColumn) Aggregate(lo, hi int64) (count int, sum, min, max int64, ok bool, err error) {
	min, max = math.MaxInt64, math.MinInt64
	for b := range f.blocks {
		if f.maxs[b] < lo || f.mins[b] >= hi {
			continue
		}
		vals, derr := f.codec.Decompress(nil, f.blocks[b])
		if derr != nil {
			return 0, 0, 0, 0, false, derr
		}
		for _, v := range vals {
			if v < lo || v >= hi {
				continue
			}
			count++
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if count == 0 {
		return 0, 0, 0, 0, false, nil
	}
	return count, sum, min, max, true, nil
}

// Thaw decompresses the entire column back into a fresh slice.
func (f *FrozenColumn) Thaw() ([]int64, error) {
	out := make([]int64, 0, f.n)
	for _, b := range f.blocks {
		var err error
		out, err = f.codec.Decompress(out, b)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
