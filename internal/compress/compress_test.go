package compress

import (
	"testing"
	"testing/quick"

	"amnesiadb/internal/xrand"
)

var codecs = []Codec{RLE{}, Delta{}, FOR{}, Auto{}}

func roundTrip(t *testing.T, c Codec, vals []int64) {
	t.Helper()
	enc := c.Compress(nil, vals)
	dec, err := c.Decompress(nil, enc)
	if err != nil {
		t.Fatalf("%s: %v", c.Name(), err)
	}
	if len(dec) != len(vals) {
		t.Fatalf("%s: decoded %d values, want %d", c.Name(), len(dec), len(vals))
	}
	for i := range vals {
		if dec[i] != vals[i] {
			t.Fatalf("%s: value %d = %d, want %d", c.Name(), i, dec[i], vals[i])
		}
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{5, 5, 5, 5},
		{1, 2, 3, 4, 5},
		{-10, 0, 10, -20, 1 << 40},
		{7},
	}
	for _, c := range codecs {
		for _, vals := range cases {
			roundTrip(t, c, vals)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	src := xrand.New(1)
	for _, c := range codecs {
		for trial := 0; trial < 20; trial++ {
			n := src.Intn(2000)
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = src.Int63n(1 << 30)
			}
			roundTrip(t, c, vals)
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	for _, c := range codecs {
		c := c
		f := func(vals []int64) bool {
			enc := c.Compress(nil, vals)
			dec, err := c.Decompress(nil, enc)
			if err != nil || len(dec) != len(vals) {
				return false
			}
			for i := range vals {
				if dec[i] != vals[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestRLEWinsOnRuns(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i / 1000) // ten long runs
	}
	rle := RLE{}.Compress(nil, vals)
	if len(rle) > 100 {
		t.Fatalf("rle encoded runs to %d bytes", len(rle))
	}
	auto := Auto{}.Compress(nil, vals)
	if auto[0] != 0 {
		t.Fatalf("auto picked codec %d on run data, want rle", auto[0])
	}
}

func TestDeltaWinsOnSerial(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i) * 1000003 // large values, constant stride
	}
	delta := Delta{}.Compress(nil, vals)
	forEnc := FOR{}.Compress(nil, vals)
	if len(delta) >= len(forEnc) {
		t.Fatalf("delta %d bytes not better than for %d on serial data", len(delta), len(forEnc))
	}
}

func TestFORWinsOnBoundedRandom(t *testing.T) {
	src := xrand.New(2)
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = src.Int63n(1024) // 10-bit domain
	}
	forEnc := FOR{}.Compress(nil, vals)
	// 10 bits per value + header ≈ 12.5 KB; raw is 80 KB.
	if len(forEnc) > 14000 {
		t.Fatalf("for encoded 10-bit data to %d bytes", len(forEnc))
	}
	rle := RLE{}.Compress(nil, vals)
	if len(forEnc) >= len(rle) {
		t.Fatalf("for %d bytes not better than rle %d on bounded random data", len(forEnc), len(rle))
	}
}

func TestFORConstantBlock(t *testing.T) {
	vals := []int64{42, 42, 42, 42, 42}
	enc := FOR{}.Compress(nil, vals)
	if len(enc) > 4 {
		t.Fatalf("constant block took %d bytes", len(enc))
	}
	roundTrip(t, FOR{}, vals)
}

func TestDecompressErrors(t *testing.T) {
	if _, err := (Auto{}).Decompress(nil, []byte{99}); err == nil {
		t.Fatal("unknown codec id accepted")
	}
	if _, err := (FOR{}).Decompress(nil, []byte{2, 8, 200}); err == nil {
		t.Fatal("truncated FOR payload accepted")
	}
}

func TestFreezeRoundTrip(t *testing.T) {
	src := xrand.New(3)
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = src.Int63n(100000)
	}
	f := Freeze(vals, nil, 1024)
	if f.Len() != len(vals) {
		t.Fatalf("frozen len = %d", f.Len())
	}
	back, err := f.Thaw()
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("thawed value %d = %d, want %d", i, back[i], vals[i])
		}
	}
}

func TestFrozenGet(t *testing.T) {
	vals := []int64{10, 20, 30, 40, 50}
	f := Freeze(vals, nil, 2)
	for i, w := range vals {
		got, err := f.Get(i)
		if err != nil || got != w {
			t.Fatalf("Get(%d) = %d, %v", i, got, err)
		}
	}
	if _, err := f.Get(5); err == nil {
		t.Fatal("out-of-range Get accepted")
	}
	if _, err := f.Get(-1); err == nil {
		t.Fatal("negative Get accepted")
	}
}

func TestFrozenScanMatchesNaive(t *testing.T) {
	src := xrand.New(4)
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = src.Int63n(1000)
	}
	f := Freeze(vals, nil, 256)
	for _, r := range [][2]int64{{0, 1000}, {100, 200}, {999, 1000}, {500, 500}} {
		got, err := f.ScanRange(r[0], r[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		var want []int32
		for i, v := range vals {
			if v >= r[0] && v < r[1] {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("scan [%d,%d): %d rows, want %d", r[0], r[1], len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("scan [%d,%d): row %d = %d, want %d", r[0], r[1], i, got[i], want[i])
			}
		}
	}
}

func TestFrozenAggregate(t *testing.T) {
	vals := []int64{10, 20, 30, 40, 50}
	f := Freeze(vals, nil, 2)
	count, sum, min, max, ok, err := f.Aggregate(20, 50)
	if err != nil || !ok {
		t.Fatalf("aggregate failed: %v %v", ok, err)
	}
	if count != 3 || sum != 90 || min != 20 || max != 40 {
		t.Fatalf("agg = %d %d %d %d", count, sum, min, max)
	}
	_, _, _, _, ok, err = f.Aggregate(1000, 2000)
	if err != nil || ok {
		t.Fatal("empty aggregate misreported")
	}
}

func TestFrozenCompressionRatioOnSkewedData(t *testing.T) {
	// The §4.4 promise: cold skewed data shrinks a lot. Zipf data with
	// heavy duplication should compress well beyond 2x.
	src := xrand.New(5)
	z := xrand.NewZipf(src, 1000, 1.2)
	vals := make([]int64, 100000)
	for i := range vals {
		vals[i] = int64(z.Next())
	}
	f := Freeze(vals, nil, 0)
	if f.Ratio() < 2 {
		t.Fatalf("skewed data ratio = %.2f, want > 2", f.Ratio())
	}
	if f.CompressedBytes() >= len(vals)*8 {
		t.Fatal("compression did not shrink")
	}
}

func BenchmarkCompress(b *testing.B) {
	src := xrand.New(1)
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = src.Int63n(100000)
	}
	for _, c := range codecs {
		b.Run(c.Name(), func(b *testing.B) {
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf = c.Compress(buf[:0], vals)
			}
			b.SetBytes(int64(len(vals) * 8))
		})
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := xrand.New(1)
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = src.Int63n(100000)
	}
	for _, c := range codecs {
		b.Run(c.Name(), func(b *testing.B) {
			enc := c.Compress(nil, vals)
			var out []int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				out, err = c.Decompress(out[:0], enc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(vals) * 8))
		})
	}
}
