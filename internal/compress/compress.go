// Package compress implements the lightweight integer compression §4.4
// proposes for postponing forgetting decisions: run-length encoding for
// repetitive (skewed) data, delta+varint for sorted/serial data, and
// frame-of-reference bit packing for bounded domains. A Codec compresses
// a block of int64 values into bytes and back; Auto picks the cheapest
// codec per block, which is how the FreezeColumn in this package shrinks
// cold table regions instead of dropping them.
package compress

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// MaxDecodedValues caps how many values a single Decompress call will
// produce. Corrupt or hostile inputs can encode absurd run lengths or
// counts in a handful of bytes; decoders fail cleanly instead of
// exhausting memory. The limit is far above any legitimate block size.
const MaxDecodedValues = 1 << 27

// Codec compresses and decompresses blocks of int64 values.
type Codec interface {
	// Name identifies the codec in headers and stats.
	Name() string
	// Compress appends the encoded form of vals to dst.
	Compress(dst []byte, vals []int64) []byte
	// Decompress appends the decoded values to dst; the input must have
	// been produced by the same codec.
	Decompress(dst []int64, data []byte) ([]int64, error)
}

// RLE encodes runs of equal values as (varint value, varint runlength)
// pairs. Ideal for Zipfian/low-cardinality data.
type RLE struct{}

// Name implements Codec.
func (RLE) Name() string { return "rle" }

// Compress implements Codec.
func (RLE) Compress(dst []byte, vals []int64) []byte {
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		dst = binary.AppendVarint(dst, vals[i])
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	return dst
}

// Decompress implements Codec.
func (RLE) Decompress(dst []int64, data []byte) ([]int64, error) {
	for len(data) > 0 {
		v, n := binary.Varint(data)
		if n <= 0 {
			return nil, fmt.Errorf("compress: rle: bad value varint")
		}
		data = data[n:]
		run, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("compress: rle: bad run varint")
		}
		data = data[n:]
		if run > MaxDecodedValues || len(dst)+int(run) > MaxDecodedValues {
			return nil, fmt.Errorf("compress: rle: run of %d exceeds decode limit", run)
		}
		for k := uint64(0); k < run; k++ {
			dst = append(dst, v)
		}
	}
	return dst, nil
}

// Delta encodes the first value raw and every subsequent value as a
// zigzag varint delta. Ideal for serial keys and timestamps.
type Delta struct{}

// Name implements Codec.
func (Delta) Name() string { return "delta" }

// Compress implements Codec.
func (Delta) Compress(dst []byte, vals []int64) []byte {
	if len(vals) == 0 {
		return dst
	}
	dst = binary.AppendVarint(dst, vals[0])
	for i := 1; i < len(vals); i++ {
		dst = binary.AppendVarint(dst, vals[i]-vals[i-1])
	}
	return dst
}

// Decompress implements Codec.
func (Delta) Decompress(dst []int64, data []byte) ([]int64, error) {
	first := true
	var prev int64
	for len(data) > 0 {
		d, n := binary.Varint(data)
		if n <= 0 {
			return nil, fmt.Errorf("compress: delta: bad varint")
		}
		data = data[n:]
		if first {
			prev = d
			first = false
		} else {
			prev += d
		}
		dst = append(dst, prev)
	}
	return dst, nil
}

// FOR is frame-of-reference bit packing: the block minimum is stored
// once, every value as a fixed-width offset. Ideal for dense bounded
// domains (the simulator's 0..DOMAIN columns).
type FOR struct{}

// Name implements Codec.
func (FOR) Name() string { return "for" }

// Compress implements Codec.
func (FOR) Compress(dst []byte, vals []int64) []byte {
	if len(vals) == 0 {
		return dst
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	width := bits.Len64(uint64(max - min)) // bits per offset; 0 for constant blocks
	// The packing accumulator holds at most 7 spare bits, so widths above
	// 57 would overflow it; such blocks gain nothing from packing anyway
	// and are stored as raw 8-byte offsets (width sentinel 64).
	if width > 57 {
		width = 64
	}
	dst = binary.AppendVarint(dst, min)
	dst = binary.AppendUvarint(dst, uint64(width))
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	if width == 64 {
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v-min))
		}
		return dst
	}
	var acc uint64
	nbits := 0
	for _, v := range vals {
		acc |= uint64(v-min) << nbits
		nbits += width
		for nbits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// Decompress implements Codec.
func (FOR) Decompress(dst []int64, data []byte) ([]int64, error) {
	if len(data) == 0 {
		return dst, nil
	}
	min, n := binary.Varint(data)
	if n <= 0 {
		return nil, fmt.Errorf("compress: for: bad min varint")
	}
	data = data[n:]
	w, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("compress: for: bad width varint")
	}
	data = data[n:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("compress: for: bad count varint")
	}
	data = data[n:]
	if count > MaxDecodedValues {
		return nil, fmt.Errorf("compress: for: count %d exceeds decode limit", count)
	}
	width := int(w)
	if width == 0 {
		for i := uint64(0); i < count; i++ {
			dst = append(dst, min)
		}
		return dst, nil
	}
	if width == 64 {
		if uint64(len(data)) < count*8 {
			return nil, fmt.Errorf("compress: for: truncated raw payload")
		}
		for i := uint64(0); i < count; i++ {
			dst = append(dst, min+int64(binary.LittleEndian.Uint64(data[i*8:])))
		}
		return dst, nil
	}
	if uint64(len(data))*8 < count*w {
		return nil, fmt.Errorf("compress: for: truncated payload: %d bytes for %d x %d bits", len(data), count, width)
	}
	var acc uint64
	nbits := 0
	mask := uint64(1)<<width - 1
	for i := uint64(0); i < count; i++ {
		for nbits < width {
			acc |= uint64(data[0]) << nbits
			data = data[1:]
			nbits += 8
		}
		dst = append(dst, min+int64(acc&mask))
		acc >>= width
		nbits -= width
	}
	return dst, nil
}

// codecByID maps header ids to codecs for Auto.
var codecByID = map[byte]Codec{0: RLE{}, 1: Delta{}, 2: FOR{}}

// Auto tries every codec per block and keeps the smallest encoding,
// prefixing one id byte.
type Auto struct{}

// Name implements Codec.
func (Auto) Name() string { return "auto" }

// Compress implements Codec.
func (Auto) Compress(dst []byte, vals []int64) []byte {
	bestID := byte(0)
	var best []byte
	for id := byte(0); id < 3; id++ {
		enc := codecByID[id].Compress(nil, vals)
		if best == nil || len(enc) < len(best) {
			best, bestID = enc, id
		}
	}
	dst = append(dst, bestID)
	return append(dst, best...)
}

// Decompress implements Codec.
func (Auto) Decompress(dst []int64, data []byte) ([]int64, error) {
	if len(data) == 0 {
		return dst, nil
	}
	c, ok := codecByID[data[0]]
	if !ok {
		return nil, fmt.Errorf("compress: auto: unknown codec id %d", data[0])
	}
	return c.Decompress(dst, data[1:])
}
