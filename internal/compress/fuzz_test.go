package compress

import (
	"encoding/binary"
	"testing"
)

// FuzzDecompress feeds arbitrary bytes to every codec: decoders must
// reject or decode, never panic or over-allocate into oblivion.
func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add((Auto{}).Compress(nil, []int64{1, -5, 1 << 40}))
	f.Add((FOR{}).Compress(nil, []int64{0, 1023, 512}))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range []Codec{RLE{}, Delta{}, FOR{}, Auto{}} {
			out, err := c.Decompress(nil, data)
			if err != nil {
				continue
			}
			// What decodes must re-encode to something that decodes to
			// the same values (not necessarily the same bytes).
			enc := c.Compress(nil, out)
			back, err := c.Decompress(nil, enc)
			if err != nil {
				t.Fatalf("%s: re-decode failed: %v", c.Name(), err)
			}
			if len(back) != len(out) {
				t.Fatalf("%s: re-decode length %d, want %d", c.Name(), len(back), len(out))
			}
			for i := range out {
				if back[i] != out[i] {
					t.Fatalf("%s: value %d changed", c.Name(), i)
				}
			}
		}
	})
}

// FuzzRoundTrip feeds arbitrary int64 payloads (as bytes) through every
// codec round trip.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	buf := make([]byte, 0, 64)
	for _, v := range []int64{-1, 0, 1, 1 << 62, -(1 << 62)} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	f.Add(buf)
	f.Fuzz(func(t *testing.T, raw []byte) {
		vals := make([]int64, len(raw)/8)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		for _, c := range []Codec{RLE{}, Delta{}, FOR{}, Auto{}} {
			enc := c.Compress(nil, vals)
			dec, err := c.Decompress(nil, enc)
			if err != nil {
				t.Fatalf("%s: own output rejected: %v", c.Name(), err)
			}
			if len(dec) != len(vals) {
				t.Fatalf("%s: %d values, want %d", c.Name(), len(dec), len(vals))
			}
			for i := range vals {
				if dec[i] != vals[i] {
					t.Fatalf("%s: value %d = %d, want %d", c.Name(), i, dec[i], vals[i])
				}
			}
		}
	})
}

// FuzzFrozen exercises the frozen-column path end to end.
func FuzzFrozen(f *testing.F) {
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0}, uint16(4))
	f.Fuzz(func(t *testing.T, raw []byte, blockRaw uint16) {
		vals := make([]int64, len(raw)/8)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
		}
		block := int(blockRaw)%512 + 1
		fc := Freeze(vals, nil, block)
		back, err := fc.Thaw()
		if err != nil {
			t.Fatal(err)
		}
		if !equal(back, vals) {
			t.Fatal("thaw mismatch")
		}
	})
}

func equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
