package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig1", "fig2", "fig3a", "fig3b", "fig3x", "agg", "vol", "sel"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing", want)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("fig1")
	if err != nil || e.ID != "fig1" {
		t.Fatalf("Lookup fig1 = %+v, %v", e, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestFig1Shape(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(&buf, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "timeline,fifo,uniform,ante,area") {
		t.Fatalf("fig1 header wrong:\n%s", firstLines(out, 2))
	}
	lines := strings.Split(out, "\n")
	// 11 timeline points (batch 0..10) follow the header.
	var first, last string
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "0,") {
			first = l
		}
		if strings.HasPrefix(l, "10,") {
			last = l
		}
	}
	// fifo column: batch 0 fully forgotten, batch 10 fully active.
	if !strings.HasPrefix(first, "0,0.0,") {
		t.Fatalf("fig1 fifo batch 0 not dark: %q", first)
	}
	if !strings.HasPrefix(last, "10,100.0,") {
		t.Fatalf("fig1 fifo batch 10 not bright: %q", last)
	}
}

func TestFig2CoversDistributions(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(&buf, 1); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(buf.String(), "\n", 2)[0]
	if head != "timeline,serial,uniform,normal,zipfian" {
		t.Fatalf("fig2 header = %q", head)
	}
}

func TestFig3HasAllStrategies(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3Normal(&buf, 1); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(buf.String(), "\n", 2)[0]
	if head != "batch,fifo,uniform,ante,rot,area" {
		t.Fatalf("fig3 header = %q", head)
	}
	if !strings.Contains(buf.String(), "batches 1..10") {
		t.Fatal("fig3 chart missing")
	}
}

func TestCompressRatiosTable(t *testing.T) {
	var buf bytes.Buffer
	if err := CompressRatios(&buf, 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 || !strings.HasPrefix(lines[0], "distribution,rle,delta,for,auto") {
		t.Fatalf("compress table:\n%s", buf.String())
	}
	// Serial data must compress best with delta.
	if !strings.HasPrefix(lines[1], "serial,") || !strings.Contains(lines[1], "8.00x") {
		t.Fatalf("serial row = %q", lines[1])
	}
}

func TestDriftDistalignedWins(t *testing.T) {
	var buf bytes.Buffer
	if err := Drift(&buf, 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := strings.Split(lines[len(lines)-1], ",")
	// columns: batch,fifo,uniform,ante,rot,area,pairwise,distaligned
	if len(last) != 8 {
		t.Fatalf("drift row = %v", last)
	}
	distaligned := parseF(t, last[7])
	for i := 1; i < 7; i++ {
		if parseF(t, last[i]) <= distaligned {
			t.Fatalf("distaligned drift %v not the lowest: col %d = %v", distaligned, i, last[i])
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(s, "%f", &v); err != nil {
		t.Fatalf("bad float %q", s)
	}
	return v
}

func TestRenderPNG(t *testing.T) {
	for _, id := range []string{"fig1", "fig3a"} {
		var buf bytes.Buffer
		if err := RenderPNG(&buf, id, 1); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() < 100 || !bytes.HasPrefix(buf.Bytes(), []byte("\x89PNG")) {
			t.Fatalf("%s: not a PNG (%d bytes)", id, buf.Len())
		}
	}
	if err := RenderPNG(&bytes.Buffer{}, "sel", 1); err == nil {
		t.Fatal("non-graphical experiment rendered")
	}
}

func TestSelectivityTable(t *testing.T) {
	var buf bytes.Buffer
	if err := Selectivity(&buf, 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(PaperStrategies) {
		t.Fatalf("selectivity table has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "strategy,S=0.01") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestHeavyExperimentsRun(t *testing.T) {
	// The remaining registry entries at full paper parameters; each just
	// has to complete and emit a plausible table. Skipped in -short.
	if testing.Short() {
		t.Skip("heavy experiments skipped in -short mode")
	}
	for _, id := range []string{"fig3b", "fig3x", "agg", "vol", "fig3e"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf, 1); err != nil {
				t.Fatal(err)
			}
			if buf.Len() < 100 {
				t.Fatalf("%s produced only %d bytes", id, buf.Len())
			}
		})
	}
}

func TestVolatilityOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := Volatility(&buf, 1); err != nil {
		t.Fatal(err)
	}
	// Final batch: every 10% column must beat its 80% counterpart.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var last string
	for _, l := range lines {
		if strings.HasPrefix(l, "10,") {
			last = l
			break
		}
	}
	if last == "" {
		t.Fatalf("no batch-10 row in:\n%s", buf.String())
	}
	cols := strings.Split(last, ",")
	// layout: batch, 5x low-volatility, 5x high-volatility
	for i := 1; i <= 5; i++ {
		low, high := parseF(t, cols[i]), parseF(t, cols[i+5])
		if low <= high {
			t.Fatalf("low-volatility %v not above high %v (col %d)", low, high, i)
		}
	}
}

func firstLines(s string, n int) string {
	parts := strings.SplitN(s, "\n", n+1)
	if len(parts) > n {
		parts = parts[:n]
	}
	return strings.Join(parts, "\n")
}
