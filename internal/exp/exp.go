// Package exp defines the paper's experiments as reproducible,
// parameter-for-parameter configurations (see DESIGN.md's experiment
// index). The CLI and the benchmark harness both run experiments from
// this single registry so figures are regenerated from one source of
// truth.
package exp

import (
	"fmt"
	"io"

	"amnesiadb/internal/amnesia"
	"amnesiadb/internal/compress"
	"amnesiadb/internal/dist"
	"amnesiadb/internal/engine"
	"amnesiadb/internal/histogram"
	"amnesiadb/internal/metrics"
	"amnesiadb/internal/report"
	"amnesiadb/internal/sim"
	"amnesiadb/internal/table"
	"amnesiadb/internal/workload"
	"amnesiadb/internal/xrand"
)

// PaperStrategies are the five algorithms of the paper's figures, in
// legend order.
var PaperStrategies = []string{"fifo", "uniform", "ante", "rot", "area"}

// MapStrategies are the four algorithms of Figure 1 (rot is excluded
// there and gets Figure 2 to itself).
var MapStrategies = []string{"fifo", "uniform", "ante", "area"}

// Experiment is one regenerable paper artefact.
type Experiment struct {
	// ID is the figure/table identifier used on the command line.
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Run executes the experiment and renders its data to w.
	Run func(w io.Writer, seed uint64) error
}

// Registry lists all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Figure 1: database amnesia map after 10 batches of updates", Run: Fig1},
		{ID: "fig2", Title: "Figure 2: database rot map after 10 batches of updates", Run: Fig2},
		{ID: "fig3a", Title: "Figure 3 (top): range query precision, normal data, upd-perc=0.80", Run: Fig3Normal},
		{ID: "fig3b", Title: "Figure 3 (bottom): range query precision, zipfian data, upd-perc=0.80", Run: Fig3Zipf},
		{ID: "fig3x", Title: "Figure 3 ablation: extension strategies (areav/pairwise/distaligned), zipfian data", Run: Fig3Extensions},
		{ID: "agg", Title: "Section 4.3: aggregate (AVG) query precision, long run", Run: AggPrecision},
		{ID: "vol", Title: "Section 4.2: volatility contrast (10% vs 80% updates)", Run: Volatility},
		{ID: "sel", Title: "Section 4.2: selectivity sweep (precision vs selectivity factor)", Run: Selectivity},
		{ID: "compress", Title: "Section 4.4 extension: compression ratios per distribution (postponing forgetting)", Run: CompressRatios},
		{ID: "drift", Title: "Section 4.4 extension: distribution drift of the active set per strategy (TV distance)", Run: Drift},
		{ID: "fig3e", Title: "Figure 3 with error bars: mean ± sd over 5 seeds, zipfian data", Run: Fig3ErrorBars},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// baseConfig is the paper's shared parameter block: dbsize=1000, 10
// batches, 1000 queries per batch.
func baseConfig(seed uint64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// Fig1 regenerates the Figure 1 amnesia map: dbsize=1000, upd-perc=0.20,
// 10 batches, strategies fifo/uniform/ante/area, uniform data (the figure
// notes data distribution plays no role for these four).
func Fig1(w io.Writer, seed uint64) error {
	cfg := baseConfig(seed)
	cfg.UpdatePerc = 0.20
	results, err := sim.RunAll(cfg, MapStrategies)
	if err != nil {
		return err
	}
	if err := report.WriteMapCSV(w, results); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return report.WriteHeatMap(w, results)
}

// Fig2 regenerates the Figure 2 rot map: the rot strategy under all four
// data distributions, same budget as Figure 1.
func Fig2(w io.Writer, seed uint64) error {
	var results []*sim.Result
	for _, d := range dist.Kinds {
		cfg := baseConfig(seed)
		cfg.UpdatePerc = 0.20
		cfg.Strategy = "rot"
		cfg.Distribution = d
		r, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		r.Series.Name = d.String()
		results = append(results, r)
	}
	if err := report.WriteMapCSV(w, results); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return report.WriteHeatMap(w, results)
}

// fig3 runs the Figure 3 range-precision experiment for one distribution.
func fig3(w io.Writer, seed uint64, d dist.Kind) error {
	cfg := baseConfig(seed)
	cfg.UpdatePerc = 0.80
	cfg.Distribution = d
	results, err := sim.RunAll(cfg, PaperStrategies)
	if err != nil {
		return err
	}
	series := seriesOf(results)
	if err := report.WriteSeriesCSV(w, series); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return report.WriteChart(w, series, 12)
}

// Fig3Extensions reruns the Figure 3 pipeline on zipfian data with the
// repository's extension strategies next to the uniform baseline. The
// value-space area variant (areav) is the interpretation under which the
// paper's "area retains precision better" claim reproduces: forgetting
// clusters in the value domain, so queries centred on retained data
// rarely cross a hole.
func Fig3Extensions(w io.Writer, seed uint64) error {
	cfg := baseConfig(seed)
	cfg.UpdatePerc = 0.80
	cfg.Distribution = dist.Zipf
	results, err := sim.RunAll(cfg, []string{"uniform", "area", "areav", "pairwise", "distaligned"})
	if err != nil {
		return err
	}
	series := seriesOf(results)
	if err := report.WriteSeriesCSV(w, series); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return report.WriteChart(w, series, 12)
}

// Fig3Normal regenerates the top panel of Figure 3 (normal data).
func Fig3Normal(w io.Writer, seed uint64) error { return fig3(w, seed, dist.Normal) }

// Fig3Zipf regenerates the bottom panel of Figure 3 (zipfian data).
func Fig3Zipf(w io.Writer, seed uint64) error { return fig3(w, seed, dist.Zipf) }

// AggPrecision regenerates the §4.3 aggregate experiment: SELECT AVG(a)
// FROM t over a doubled run length, reporting per-batch tuple precision
// and mean relative AVG error for every strategy.
func AggPrecision(w io.Writer, seed uint64) error {
	var series []*metrics.Series
	var aggSeries []*metrics.Series
	for _, s := range PaperStrategies {
		cfg := baseConfig(seed)
		cfg.UpdatePerc = 0.80
		cfg.Batches = 20 // "we increased the experimental run length"
		cfg.Strategy = s
		cfg.Queries = sim.AggQueries
		cfg.QueriesPerBatch = 200
		r, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		series = append(series, &r.Series)
		agg := &metrics.Series{Name: s + "-avg-err"}
		for _, p := range r.Series.Points {
			// Re-plot 1-error so the chart shares the precision axis.
			agg.Points = append(agg.Points, metrics.Point{
				Batch:     p.Batch,
				Precision: clamp01(1 - p.AggregateErr),
			})
		}
		aggSeries = append(aggSeries, agg)
	}
	fmt.Fprintln(w, "# tuple-level precision of AVG queries")
	if err := report.WriteSeriesCSV(w, series); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n# 1 - mean relative AVG error")
	if err := report.WriteSeriesCSV(w, aggSeries); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return report.WriteChart(w, series, 12)
}

// Volatility regenerates the §4.2 volatility contrast: the uniform-range
// experiment at 10% and 80% update volatility for every strategy.
func Volatility(w io.Writer, seed uint64) error {
	var series []*metrics.Series
	for _, pct := range []float64{0.10, 0.80} {
		for _, s := range PaperStrategies {
			cfg := baseConfig(seed)
			cfg.UpdatePerc = pct
			cfg.Strategy = s
			cfg.QueriesPerBatch = 500
			r, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			r.Series.Name = fmt.Sprintf("%s@%d%%", s, int(pct*100))
			series = append(series, &r.Series)
		}
	}
	if err := report.WriteSeriesCSV(w, series); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return report.WriteChart(w, series, 12)
}

// Selectivity regenerates the §4.2 claim that "increasing the selectivity
// factor does not improve the precision": final-batch precision per
// strategy across selectivity factors.
func Selectivity(w io.Writer, seed uint64) error {
	factors := []float64{0.01, 0.05, 0.20, 0.50, 1.0}
	fmt.Fprint(w, "strategy")
	for _, f := range factors {
		fmt.Fprintf(w, ",S=%.2f", f)
	}
	fmt.Fprintln(w)
	for _, s := range PaperStrategies {
		fmt.Fprint(w, s)
		for _, f := range factors {
			cfg := baseConfig(seed)
			cfg.UpdatePerc = 0.80
			cfg.Strategy = s
			cfg.Selectivity = f
			cfg.QueriesPerBatch = 300
			r, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			ps := r.Series.Precisions()
			fmt.Fprintf(w, ",%.4f", ps[len(ps)-1])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig3ErrorBars reruns the Figure 3 zipfian panel over five seeds per
// strategy and reports mean ± sample standard deviation per batch. The
// paper plots single runs; the tiny deviations here (the precision is
// dominated by the deterministic active/stored ratio) justify that
// practice quantitatively.
func Fig3ErrorBars(w io.Writer, seed uint64) error {
	const seeds = 5
	fmt.Fprint(w, "batch")
	for _, s := range PaperStrategies {
		fmt.Fprintf(w, ",%s_mean,%s_sd", s, s)
	}
	fmt.Fprintln(w)
	var stats []*sim.SeedStats
	for _, s := range PaperStrategies {
		cfg := baseConfig(seed)
		cfg.UpdatePerc = 0.80
		cfg.Distribution = dist.Zipf
		cfg.Strategy = s
		cfg.QueriesPerBatch = 300
		st, err := sim.RunSeeds(cfg, seeds)
		if err != nil {
			return err
		}
		stats = append(stats, st)
	}
	for bi, b := range stats[0].Batches {
		fmt.Fprintf(w, "%d", b)
		for _, st := range stats {
			fmt.Fprintf(w, ",%.4f,%.4f", st.Mean[bi], st.StdDev[bi])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RenderPNG regenerates one of the graphical experiments (fig1, fig2,
// fig3a, fig3b, fig3x) as a PNG written to w. Non-graphical experiment
// ids are rejected.
func RenderPNG(w io.Writer, id string, seed uint64) error {
	switch id {
	case "fig1":
		cfg := baseConfig(seed)
		cfg.UpdatePerc = 0.20
		results, err := sim.RunAll(cfg, MapStrategies)
		if err != nil {
			return err
		}
		return report.WriteMapPNG(w, results, 0, 0)
	case "fig2":
		var results []*sim.Result
		for _, d := range dist.Kinds {
			cfg := baseConfig(seed)
			cfg.UpdatePerc = 0.20
			cfg.Strategy = "rot"
			cfg.Distribution = d
			r, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			r.Series.Name = d.String()
			results = append(results, r)
		}
		return report.WriteMapPNG(w, results, 0, 0)
	case "fig3a", "fig3b":
		d := dist.Normal
		if id == "fig3b" {
			d = dist.Zipf
		}
		cfg := baseConfig(seed)
		cfg.UpdatePerc = 0.80
		cfg.Distribution = d
		results, err := sim.RunAll(cfg, PaperStrategies)
		if err != nil {
			return err
		}
		return report.WriteSeriesPNG(w, seriesOf(results), 0, 0)
	case "fig3x":
		cfg := baseConfig(seed)
		cfg.UpdatePerc = 0.80
		cfg.Distribution = dist.Zipf
		results, err := sim.RunAll(cfg, []string{"uniform", "area", "areav", "pairwise", "distaligned"})
		if err != nil {
			return err
		}
		return report.WriteSeriesPNG(w, seriesOf(results), 0, 0)
	}
	return fmt.Errorf("exp: experiment %q has no PNG rendering", id)
}

// CompressRatios quantifies the §4.4 option of compressing cold data
// instead of forgetting it: for each data distribution it freezes a
// 100k-tuple column with each codec and reports the compression ratio —
// how many batches of forgetting a freeze can postpone at equal budget.
func CompressRatios(w io.Writer, seed uint64) error {
	const n = 100000
	codecs := []compress.Codec{compress.RLE{}, compress.Delta{}, compress.FOR{}, compress.Auto{}}
	fmt.Fprint(w, "distribution")
	for _, c := range codecs {
		fmt.Fprintf(w, ",%s", c.Name())
	}
	fmt.Fprintln(w)
	for _, d := range dist.Kinds {
		gen := dist.NewGenerator(d, 100000, xrand.New(seed))
		vals := gen.Batch(nil, n)
		fmt.Fprint(w, d)
		for _, c := range codecs {
			f := compress.Freeze(vals, c, 0)
			fmt.Fprintf(w, ",%.2fx", f.Ratio())
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Drift measures, per batch, the total-variation distance between the
// active set's value distribution and the distribution of everything ever
// inserted — the alignment §4.4's distribution-aware forgetting aims to
// minimise. Run on zipfian data where careless forgetting distorts the
// shape most visibly; distaligned should hold the lowest curve.
func Drift(w io.Writer, seed uint64) error {
	strategies := []string{"fifo", "uniform", "ante", "rot", "area", "pairwise", "distaligned"}
	const (
		dbsize  = 1000
		batches = 10
		bins    = 16
	)
	fmt.Fprint(w, "batch")
	for _, s := range strategies {
		fmt.Fprintf(w, ",%s", s)
	}
	fmt.Fprintln(w)
	drift := make([][]float64, batches)
	for i := range drift {
		drift[i] = make([]float64, len(strategies))
	}
	for si, stratName := range strategies {
		root := xrand.New(seed)
		gen := dist.NewGenerator(dist.Zipf, 100000, root.Split())
		strat, err := amnesia.New(stratName, "a", root.Split())
		if err != nil {
			return err
		}
		tb := table.New("t", "a")
		querySrc := root.Split()
		ex := engine.New(tb)
		rg := workload.NewRangeGen(querySrc, "a")
		if _, err := tb.AppendSingleColumn(gen.Batch(nil, dbsize)); err != nil {
			return err
		}
		for b := 0; b < batches; b++ {
			if _, err := workload.RunRangeBatch(ex, rg, 100); err != nil {
				return err
			}
			if _, err := tb.AppendSingleColumn(gen.Batch(nil, dbsize/5)); err != nil {
				return err
			}
			strat.Forget(tb, tb.ActiveCount()-dbsize)
			c := tb.MustColumn("a")
			all := histogram.FromValues(c.Values(), bins)
			active := histogram.New(bins, maxOf(c.Values()))
			for _, i := range tb.ActiveIndices() {
				active.Add(c.Get(i))
			}
			drift[b][si] = all.TVDistance(active)
		}
	}
	for b := 0; b < batches; b++ {
		fmt.Fprintf(w, "%d", b+1)
		for si := range strategies {
			fmt.Fprintf(w, ",%.4f", drift[b][si])
		}
		fmt.Fprintln(w)
	}
	return nil
}

func maxOf(vals []int64) int64 {
	var max int64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	return max
}

func seriesOf(results []*sim.Result) []*metrics.Series {
	out := make([]*metrics.Series, len(results))
	for i, r := range results {
		out[i] = &r.Series
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
