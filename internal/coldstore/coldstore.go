// Package coldstore simulates the "move forgotten data to cheap slow
// cold-storage" fate of §1. Forgotten tuples are demoted out of the hot
// table into a cold tier whose cost/latency model defaults to the AWS
// Glacier numbers the paper quotes for 2016 ($48/TB-year storage,
// $2.50-$30/TB retrieval, hours of latency). Recovery is explicit — cold
// data "will never show up in query results, unless the user takes the
// action and recovers" (§5).
package coldstore

import (
	"fmt"
	"sort"
	"time"

	"amnesiadb/internal/table"
)

// CostModel prices the cold tier. All monetary figures are USD.
type CostModel struct {
	// StorePerTBYear is the at-rest cost of one terabyte for one year.
	StorePerTBYear float64
	// RetrievePerTB is the cost of pulling one terabyte back.
	RetrievePerTB float64
	// RetrievalLatency is the simulated time before recovered data is
	// usable.
	RetrievalLatency time.Duration
}

// Glacier2016 is the paper's §1 reference point for cold storage pricing.
var Glacier2016 = CostModel{
	StorePerTBYear:   48,
	RetrievePerTB:    30,
	RetrievalLatency: 12 * time.Hour,
}

// tupleBytes is the accounted size of one demoted tuple: an 8-byte value
// per column plus a 4-byte position.
func tupleBytes(columns int) int { return columns*8 + 4 }

// Store is a cold tier bound to one table. Demoted tuples keep their
// original positions so recovery can reactivate them in place.
type Store struct {
	t     *table.Table
	model CostModel

	frozen map[int][]int64 // position -> column values at demotion time
	order  []int           // demotion order for deterministic iteration

	bytesStored    int64
	bytesRetrieved int64
	retrievals     int
}

// New returns an empty cold store for t using the given cost model.
func New(t *table.Table, model CostModel) *Store {
	return &Store{t: t, model: model, frozen: make(map[int][]int64)}
}

// Demote moves every currently forgotten, not-yet-demoted tuple into the
// cold tier and returns how many were demoted. The hot table keeps the
// tuples marked inactive; callers typically Vacuum afterwards to reclaim
// the hot-tier space.
func (s *Store) Demote() int {
	cols := s.t.Columns()
	n := 0
	for _, i := range s.t.ForgottenIndices() {
		if _, dup := s.frozen[i]; dup {
			continue
		}
		vals := make([]int64, len(cols))
		for ci, cn := range cols {
			vals[ci] = s.t.MustColumn(cn).Get(i)
		}
		s.frozen[i] = vals
		s.order = append(s.order, i)
		s.bytesStored += int64(tupleBytes(len(cols)))
		n++
	}
	return n
}

// Tuples returns the number of tuples resident in the cold tier.
func (s *Store) Tuples() int { return len(s.frozen) }

// BytesStored returns the accounted cold-tier footprint in bytes.
func (s *Store) BytesStored() int64 { return s.bytesStored }

// Recover reactivates the given tuple positions from the cold tier,
// returning the simulated latency of the retrieval and an error if any
// position is not cold. Recovered tuples become active again and leave
// the cold tier.
func (s *Store) Recover(positions []int) (time.Duration, error) {
	for _, p := range positions {
		if _, ok := s.frozen[p]; !ok {
			return 0, fmt.Errorf("coldstore: tuple %d is not in cold storage", p)
		}
	}
	cols := len(s.t.Columns())
	for _, p := range positions {
		delete(s.frozen, p)
		s.t.Remember(p)
		s.bytesRetrieved += int64(tupleBytes(cols))
		s.bytesStored -= int64(tupleBytes(cols))
	}
	if len(positions) > 0 {
		s.retrievals++
		s.compactOrder()
	}
	return s.model.RetrievalLatency, nil
}

// RecoverRange reactivates every cold tuple whose value in column col lies
// in [lo, hi), returning the recovered positions and simulated latency.
// This is the "recover a backup version explicitly" workflow of §5.
func (s *Store) RecoverRange(col string, lo, hi int64) ([]int, time.Duration, error) {
	ci := -1
	for idx, cn := range s.t.Columns() {
		if cn == col {
			ci = idx
			break
		}
	}
	if ci < 0 {
		return nil, 0, fmt.Errorf("coldstore: unknown column %q", col)
	}
	var hits []int
	for _, p := range s.order {
		vals, ok := s.frozen[p]
		if !ok {
			continue
		}
		if vals[ci] >= lo && vals[ci] < hi {
			hits = append(hits, p)
		}
	}
	sort.Ints(hits)
	lat, err := s.Recover(hits)
	return hits, lat, err
}

// compactOrder drops recovered positions from the demotion order.
func (s *Store) compactOrder() {
	w := 0
	for _, p := range s.order {
		if _, ok := s.frozen[p]; ok {
			s.order[w] = p
			w++
		}
	}
	s.order = s.order[:w]
}

// Bill summarises the accumulated cost of using the cold tier.
type Bill struct {
	// StoragePerYear is the annual at-rest cost of the current
	// residents.
	StoragePerYear float64
	// RetrievalTotal is the cumulative cost of all retrievals.
	RetrievalTotal float64
	// Retrievals counts recovery round-trips.
	Retrievals int
}

// Bill computes the current cost summary under the store's model.
func (s *Store) Bill() Bill {
	const tb = 1 << 40
	return Bill{
		StoragePerYear: float64(s.bytesStored) / tb * s.model.StorePerTBYear,
		RetrievalTotal: float64(s.bytesRetrieved) / tb * s.model.RetrievePerTB,
		Retrievals:     s.retrievals,
	}
}
