package coldstore

import (
	"testing"

	"amnesiadb/internal/table"
)

func tbl(t *testing.T, vals ...int64) *table.Table {
	t.Helper()
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestDemoteMovesForgotten(t *testing.T) {
	tb := tbl(t, 10, 20, 30, 40)
	tb.Forget(1)
	tb.Forget(3)
	s := New(tb, Glacier2016)
	if n := s.Demote(); n != 2 {
		t.Fatalf("demoted %d, want 2", n)
	}
	if s.Tuples() != 2 {
		t.Fatalf("cold tuples = %d", s.Tuples())
	}
	// Idempotent: re-demoting the same tuples is a no-op.
	if n := s.Demote(); n != 0 {
		t.Fatalf("re-demote moved %d", n)
	}
}

func TestDemoteAccountsBytes(t *testing.T) {
	tb := tbl(t, 1, 2, 3)
	tb.Forget(0)
	s := New(tb, Glacier2016)
	s.Demote()
	if s.BytesStored() != 12 { // one column: 8 + 4
		t.Fatalf("bytes stored = %d", s.BytesStored())
	}
}

func TestRecoverReactivates(t *testing.T) {
	tb := tbl(t, 10, 20, 30)
	tb.Forget(1)
	s := New(tb, Glacier2016)
	s.Demote()
	lat, err := s.Recover([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if lat != Glacier2016.RetrievalLatency {
		t.Fatalf("latency = %v", lat)
	}
	if !tb.IsActive(1) {
		t.Fatal("recovered tuple not active")
	}
	if s.Tuples() != 0 || s.BytesStored() != 0 {
		t.Fatalf("cold tier not emptied: %d tuples, %d bytes", s.Tuples(), s.BytesStored())
	}
}

func TestRecoverUnknownPosition(t *testing.T) {
	tb := tbl(t, 1, 2)
	s := New(tb, Glacier2016)
	if _, err := s.Recover([]int{0}); err == nil {
		t.Fatal("recovering a hot tuple succeeded")
	}
}

func TestRecoverRange(t *testing.T) {
	tb := tbl(t, 10, 20, 30, 40, 50)
	for i := 0; i < 5; i++ {
		tb.Forget(i)
	}
	s := New(tb, Glacier2016)
	s.Demote()
	hits, _, err := s.RecoverRange("a", 20, 45)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 || hits[0] != 1 || hits[2] != 3 {
		t.Fatalf("hits = %v", hits)
	}
	for _, p := range hits {
		if !tb.IsActive(p) {
			t.Fatalf("tuple %d not reactivated", p)
		}
	}
	if s.Tuples() != 2 {
		t.Fatalf("cold residents = %d, want 2", s.Tuples())
	}
}

func TestRecoverRangeUnknownColumn(t *testing.T) {
	tb := tbl(t, 1)
	s := New(tb, Glacier2016)
	if _, _, err := s.RecoverRange("zz", 0, 1); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestBillTracksCosts(t *testing.T) {
	tb := tbl(t, 1, 2, 3, 4)
	for i := 0; i < 4; i++ {
		tb.Forget(i)
	}
	s := New(tb, Glacier2016)
	s.Demote()
	bill := s.Bill()
	if bill.StoragePerYear <= 0 {
		t.Fatalf("storage bill = %v", bill.StoragePerYear)
	}
	if bill.RetrievalTotal != 0 || bill.Retrievals != 0 {
		t.Fatalf("retrieval bill before recovery: %+v", bill)
	}
	if _, err := s.Recover([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	bill = s.Bill()
	if bill.RetrievalTotal <= 0 || bill.Retrievals != 1 {
		t.Fatalf("retrieval bill after recovery: %+v", bill)
	}
}

func TestDemoteAfterVacuumIsSafe(t *testing.T) {
	// Typical lifecycle: forget → demote → vacuum. Cold data keeps its
	// snapshot even though the hot positions have been compacted away.
	tb := tbl(t, 10, 20, 30)
	tb.Forget(1)
	s := New(tb, Glacier2016)
	s.Demote()
	if s.Tuples() != 1 {
		t.Fatalf("cold tuples = %d", s.Tuples())
	}
	// The cold snapshot survives independent of the hot table's layout.
	if got := s.frozen[1][0]; got != 20 {
		t.Fatalf("frozen value = %d, want 20", got)
	}
}
