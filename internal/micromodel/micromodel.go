// Package micromodel implements §5's most adventurous counter to
// forgetting: "replacing portions of the database by micro-models"
// (Mühleisen, Kersten & Manegold, "Capturing the laws of (data) nature",
// CIDR 2015). A Model replaces a set of forgotten tuples by piecewise
// least-squares linear fits over insertion position plus a per-segment
// value histogram, a few dozen bytes per segment. The model answers
// point reconstructions and range-count/sum estimates for data that no
// longer exists.
package micromodel

import (
	"fmt"
	"math"

	"amnesiadb/internal/table"
)

// Segment is one linear micro-model: over positions [StartPos, EndPos]
// the value is approximated by Intercept + Slope*(pos-StartPos); the
// histogram summarises the value distribution for range estimation.
type Segment struct {
	StartPos, EndPos int
	Count            int
	Intercept, Slope float64
	RMSE             float64
	Min, Max         int64
	hist             []int // equi-width buckets over [Min, Max]
}

// DefaultSegmentSize is the number of tuples folded into one segment.
const DefaultSegmentSize = 256

// DefaultHistBuckets is the per-segment histogram resolution.
const DefaultHistBuckets = 8

// Model is a piecewise-linear replacement for forgotten tuples of one
// column.
type Model struct {
	col      string
	segments []Segment
}

// Fit builds a model over the currently forgotten tuples of column col,
// in insertion order, using segments of segSize tuples (DefaultSegmentSize
// when <= 0). Typically followed by table.Vacuum: the tuples die, the
// model remains.
func Fit(t *table.Table, col string, segSize int) (*Model, error) {
	c, err := t.Column(col)
	if err != nil {
		return nil, err
	}
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	idx := t.ForgottenIndices()
	m := &Model{col: col}
	for start := 0; start < len(idx); start += segSize {
		end := start + segSize
		if end > len(idx) {
			end = len(idx)
		}
		m.segments = append(m.segments, fitSegment(c, idx[start:end]))
	}
	return m, nil
}

// fitSegment least-squares fits value against relative position and
// builds the value histogram.
func fitSegment(c interface{ Get(int) int64 }, idx []int) Segment {
	n := float64(len(idx))
	seg := Segment{
		StartPos: idx[0],
		EndPos:   idx[len(idx)-1],
		Count:    len(idx),
		Min:      math.MaxInt64,
		Max:      math.MinInt64,
	}
	var sx, sy, sxx, sxy float64
	for i, pos := range idx {
		v := c.Get(pos)
		if v < seg.Min {
			seg.Min = v
		}
		if v > seg.Max {
			seg.Max = v
		}
		x, y := float64(i), float64(v)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom != 0 {
		seg.Slope = (n*sxy - sx*sy) / denom
		seg.Intercept = (sy - seg.Slope*sx) / n
	} else {
		seg.Intercept = sy / n
	}
	var sse float64
	seg.hist = make([]int, DefaultHistBuckets)
	width := float64(seg.Max-seg.Min) + 1
	for i, pos := range idx {
		v := c.Get(pos)
		r := float64(v) - (seg.Intercept + seg.Slope*float64(i))
		sse += r * r
		b := int(float64(v-seg.Min) / width * DefaultHistBuckets)
		if b >= DefaultHistBuckets {
			b = DefaultHistBuckets - 1
		}
		seg.hist[b]++
	}
	seg.RMSE = math.Sqrt(sse / n)
	return seg
}

// Segments returns the fitted segments.
func (m *Model) Segments() []Segment { return m.segments }

// SizeBytes is the model footprint: ~6 scalars + histogram per segment.
func (m *Model) SizeBytes() int {
	return len(m.segments) * (6*8 + DefaultHistBuckets*4)
}

// Count returns the number of tuples the model stands in for.
func (m *Model) Count() int {
	n := 0
	for _, s := range m.segments {
		n += s.Count
	}
	return n
}

// EstimateAt reconstructs the value of the forgotten tuple that was the
// i-th (0-based) tuple absorbed into the model.
func (m *Model) EstimateAt(i int) (float64, error) {
	if i < 0 {
		return 0, fmt.Errorf("micromodel: negative index %d", i)
	}
	for _, s := range m.segments {
		if i < s.Count {
			return s.Intercept + s.Slope*float64(i), nil
		}
		i -= s.Count
	}
	return 0, fmt.Errorf("micromodel: index beyond modelled tuples")
}

// EstimateRangeCount estimates how many modelled tuples had values in
// [lo, hi), interpolating uniformly within histogram buckets.
func (m *Model) EstimateRangeCount(lo, hi int64) float64 {
	var total float64
	for _, s := range m.segments {
		total += s.estimateCount(lo, hi)
	}
	return total
}

func (s *Segment) estimateCount(lo, hi int64) float64 {
	if hi <= s.Min || lo > s.Max {
		return 0
	}
	width := (float64(s.Max-s.Min) + 1) / DefaultHistBuckets
	var est float64
	for b, cnt := range s.hist {
		if cnt == 0 {
			continue
		}
		bLo := float64(s.Min) + float64(b)*width
		bHi := bLo + width
		oLo := math.Max(bLo, float64(lo))
		oHi := math.Min(bHi, float64(hi))
		if oHi <= oLo {
			continue
		}
		est += float64(cnt) * (oHi - oLo) / width
	}
	return est
}

// EstimateRangeSum estimates the sum of modelled values in [lo, hi) using
// bucket midpoints.
func (m *Model) EstimateRangeSum(lo, hi int64) float64 {
	var total float64
	for _, s := range m.segments {
		width := (float64(s.Max-s.Min) + 1) / DefaultHistBuckets
		for b, cnt := range s.hist {
			if cnt == 0 {
				continue
			}
			bLo := float64(s.Min) + float64(b)*width
			bHi := bLo + width
			oLo := math.Max(bLo, float64(lo))
			oHi := math.Min(bHi, float64(hi))
			if oHi <= oLo {
				continue
			}
			frac := (oHi - oLo) / width
			total += float64(cnt) * frac * (oLo + oHi) / 2
		}
	}
	return total
}

// MeanRMSE reports the average per-segment fit error — the model's own
// quality signal, which a DBMS would use to decide whether modelling or
// summarising a region loses less information.
func (m *Model) MeanRMSE() float64 {
	if len(m.segments) == 0 {
		return 0
	}
	var s float64
	for _, seg := range m.segments {
		s += seg.RMSE
	}
	return s / float64(len(m.segments))
}
