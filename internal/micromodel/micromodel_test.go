package micromodel

import (
	"math"
	"testing"

	"amnesiadb/internal/table"
	"amnesiadb/internal/xrand"
)

func forgetAll(t *testing.T, vals []int64) *table.Table {
	t.Helper()
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn(vals); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		tb.Forget(i)
	}
	return tb
}

func TestFitLinearDataExactly(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(3*i + 7)
	}
	tb := forgetAll(t, vals)
	m, err := Fit(tb, "a", 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments()) != 4 || m.Count() != 1000 {
		t.Fatalf("segments=%d count=%d", len(m.Segments()), m.Count())
	}
	if rmse := m.MeanRMSE(); rmse > 1e-6 {
		t.Fatalf("linear fit RMSE = %v", rmse)
	}
	for _, i := range []int{0, 1, 500, 999} {
		got, err := m.EstimateAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-float64(3*i+7)) > 1e-6 {
			t.Fatalf("EstimateAt(%d) = %v, want %d", i, got, 3*i+7)
		}
	}
}

func TestEstimateAtErrors(t *testing.T) {
	tb := forgetAll(t, []int64{1, 2, 3})
	m, err := Fit(tb, "a", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EstimateAt(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := m.EstimateAt(3); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestFitUnknownColumn(t *testing.T) {
	tb := forgetAll(t, []int64{1})
	if _, err := Fit(tb, "zz", 10); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestRangeCountOnUniformData(t *testing.T) {
	src := xrand.New(1)
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = src.Int63n(1000)
	}
	tb := forgetAll(t, vals)
	m, err := Fit(tb, "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int64{{0, 1000}, {100, 300}, {900, 1000}} {
		var exact int
		for _, v := range vals {
			if v >= r[0] && v < r[1] {
				exact++
			}
		}
		est := m.EstimateRangeCount(r[0], r[1])
		if math.Abs(est-float64(exact)) > float64(exact)*0.15+50 {
			t.Fatalf("range [%d,%d): estimate %.0f vs exact %d", r[0], r[1], est, exact)
		}
	}
}

func TestRangeSumOnUniformData(t *testing.T) {
	src := xrand.New(2)
	vals := make([]int64, 10000)
	var exactSum float64
	for i := range vals {
		vals[i] = src.Int63n(1000)
		exactSum += float64(vals[i])
	}
	tb := forgetAll(t, vals)
	m, err := Fit(tb, "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	est := m.EstimateRangeSum(0, 1000)
	if math.Abs(est-exactSum)/exactSum > 0.05 {
		t.Fatalf("sum estimate %.0f vs exact %.0f", est, exactSum)
	}
}

func TestModelOnlyCoversForgotten(t *testing.T) {
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn([]int64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	tb.Forget(1)
	tb.Forget(3)
	m, err := Fit(tb, "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 2 {
		t.Fatalf("modelled %d tuples, want 2", m.Count())
	}
}

func TestModelSurvivesVacuum(t *testing.T) {
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = int64(i)
	}
	tb := forgetAll(t, vals)
	m, err := Fit(tb, "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.Vacuum()
	if tb.Len() != 0 {
		t.Fatal("vacuum left tuples")
	}
	got, err := m.EstimateAt(250)
	if err != nil || math.Abs(got-250) > 1e-6 {
		t.Fatalf("post-vacuum estimate = %v, %v", got, err)
	}
}

func TestSizeDrasticallySmaller(t *testing.T) {
	vals := make([]int64, 100000)
	for i := range vals {
		vals[i] = int64(i)
	}
	tb := forgetAll(t, vals)
	m, err := Fit(tb, "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	raw := len(vals) * 8
	if m.SizeBytes() > raw/20 {
		t.Fatalf("model %d bytes vs raw %d — not drastic", m.SizeBytes(), raw)
	}
}

func TestEmptyForgottenSet(t *testing.T) {
	tb := table.New("t", "a")
	if _, err := tb.AppendSingleColumn([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	m, err := Fit(tb, "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 0 || m.EstimateRangeCount(0, 10) != 0 {
		t.Fatal("empty model misbehaved")
	}
}
