package amnesiadb_test

import (
	"sync"
	"testing"

	"amnesiadb"
	"amnesiadb/internal/xrand"
)

// TestConcurrentFacadeUse hammers one table from many goroutines mixing
// inserts, selects, aggregates, SQL, policy flips and maintenance. Run
// under -race (the CI default here) it proves the facade's thread-safety
// contract; the final invariants prove no update was lost.
func TestConcurrentFacadeUse(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
	tb, err := db.CreateTable("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetPolicy(amnesiadb.Policy{Strategy: "uniform", Budget: 500}); err != nil {
		t.Fatal(err)
	}

	const (
		workers          = 8
		roundsPerWorker  = 25
		insertsPerWorker = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := xrand.New(uint64(w) + 10)
			for r := 0; r < roundsPerWorker; r++ {
				switch r % 5 {
				case 0:
					vals := make([]int64, insertsPerWorker)
					for i := range vals {
						vals[i] = src.Int63n(100000)
					}
					if err := tb.InsertColumn("a", vals); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := tb.Select("a", amnesiadb.Range(0, 50000)); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := db.Query("SELECT COUNT(*) FROM t WHERE a < 90000"); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, _, _, err := tb.Precision("a", amnesiadb.All()); err != nil {
						errs <- err
						return
					}
				case 4:
					_ = tb.Stats()
					_, _ = tb.ActivePerBatch()
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := tb.Stats()
	wantInserted := workers * (roundsPerWorker / 5) * insertsPerWorker
	if s.Tuples != wantInserted {
		t.Fatalf("stored %d tuples, want %d", s.Tuples, wantInserted)
	}
	if s.Active > 500 {
		t.Fatalf("budget exceeded under concurrency: %d", s.Active)
	}
}

// TestParallelReaders exercises the RWMutex read path: a static table
// serves many concurrent readers mixing Select, SQL, GroupBy, Aggregate
// and Precision. Every reader must see the identical result set (no
// writer runs), and the access-frequency feedback must come out exact —
// proof that batched TouchMany flushes survive read parallelism.
func TestParallelReaders(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 7})
	tb, err := db.CreateTable("r", "a")
	if err != nil {
		t.Fatal(err)
	}
	src := xrand.New(3)
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = src.Int63n(10000)
	}
	if err := tb.InsertColumn("a", vals); err != nil {
		t.Fatal(err)
	}
	pred := amnesiadb.Range(1000, 9000)
	want, err := tb.Select("a", pred)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	const rounds = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, err := tb.Select("a", pred)
				if err != nil {
					errs <- err
					return
				}
				if res.Count() != want.Count() {
					t.Errorf("reader saw %d rows, want %d", res.Count(), want.Count())
					return
				}
				if _, err := db.Query("SELECT a FROM r WHERE a >= 1000 AND a < 9000 LIMIT 5"); err != nil {
					errs <- err
					return
				}
				if _, err := tb.Aggregate("a", pred); err != nil {
					errs <- err
					return
				}
				if _, err := tb.GroupBy("a", pred, 1000); err != nil {
					errs <- err
					return
				}
				if _, _, _, err := tb.Precision("a", pred); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentTableCreation checks the catalog itself is race-free.
func TestConcurrentTableCreation(t *testing.T) {
	db := amnesiadb.Open(amnesiadb.Options{Seed: 2})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := "t" + string(rune('a'+w))
			if _, err := db.CreateTable(name, "x"); err != nil {
				t.Error(err)
				return
			}
			if _, ok := db.Table(name); !ok {
				t.Errorf("table %s vanished", name)
			}
			_ = db.TableNames()
		}()
	}
	wg.Wait()
	if len(db.TableNames()) != 16 {
		t.Fatalf("tables = %v", db.TableNames())
	}
}
