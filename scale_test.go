package amnesiadb_test

import (
	"testing"

	"amnesiadb"
	"amnesiadb/internal/sim"
	"amnesiadb/internal/xrand"
)

// TestScaleMillionTuples pushes a million tuples through a 100k budget
// under every strategy, asserting the budget invariant and sane precision
// at a scale 1000x the paper's. Skipped with -short.
func TestScaleMillionTuples(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("scale test skipped under the race detector")
	}
	for _, strat := range []string{"fifo", "uniform", "ante", "rot", "area", "areav", "decay"} {
		t.Run(strat, func(t *testing.T) {
			db := amnesiadb.Open(amnesiadb.Options{Seed: 1})
			tb, err := db.CreateTable("big", "a")
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.SetPolicy(amnesiadb.Policy{Strategy: strat, Budget: 100_000}); err != nil {
				t.Fatal(err)
			}
			src := xrand.New(2)
			for round := 0; round < 10; round++ {
				vals := make([]int64, 100_000)
				for i := range vals {
					vals[i] = src.Int63n(1 << 20)
				}
				if err := tb.InsertColumn("a", vals); err != nil {
					t.Fatal(err)
				}
			}
			s := tb.Stats()
			if s.Tuples != 1_000_000 || s.Active != 100_000 {
				t.Fatalf("stats = %+v", s)
			}
			_, _, pf, err := tb.Precision("a", amnesiadb.Range(0, 1<<19))
			if err != nil {
				t.Fatal(err)
			}
			if pf < 0.05 || pf > 0.5 {
				t.Fatalf("precision %v outside plausible envelope", pf)
			}
		})
	}
}

// TestScaleSimulatorLargeDB runs the paper's pipeline at dbsize=20000 —
// 20x the paper — verifying the trends survive scale (the paper's §6
// "similar studies to understand the impact of scale"). Skipped with
// -short.
func TestScaleSimulatorLargeDB(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	cfg := sim.DefaultConfig()
	cfg.DBSize = 20000
	cfg.QueriesPerBatch = 100
	cfg.UpdatePerc = 0.8
	cfg.Strategy = "uniform"
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Series.Precisions()
	// Precision tracks active/stored regardless of absolute scale.
	finalRatio := float64(cfg.DBSize) / float64(res.Stats.Tuples)
	if got := ps[len(ps)-1]; got < finalRatio*0.7 || got > finalRatio*1.3 {
		t.Fatalf("scale run precision %v, want ~%v", got, finalRatio)
	}
}
