// Package amnesiadb is a columnar embedded database with built-in,
// bounded-storage forgetting ("amnesia"), reproducing the system of
// Kersten & Sidirourgos, "A Database System with Amnesia" (CIDR 2017).
//
// A Table holds append-only int64 columns. A Policy gives the table a
// fixed active-tuple budget (and optionally a hard retention window) and
// an amnesia strategy; every insert beyond the budget makes the table
// semi-autonomously forget tuples, chosen by the strategy (fifo, uniform,
// ante, rot, area, areav, decay, frequent, pairwise, distaligned).
// Queries normally see only active tuples; the forgotten
// ones can be scanned explicitly, demoted to a simulated cold tier,
// collapsed into aggregate summaries, or physically vacuumed away — the
// four fates of forgotten data the paper enumerates.
//
// Execution is vectorized in the MonetDB lineage the paper comes from:
// queries run batch-at-a-time over selection vectors (fixed-size position
// + value buffers filled by zone-map-pruned column scan kernels), with
// predicates applied by compacting kernels and aggregates folded in one
// fused pass. Reads run in parallel twice over: across queries —
// Select, Aggregate, GroupBy, Precision and SQL queries take a shared
// lock, while inserts, policy enforcement and maintenance are exclusive
// — and within one query, where large scans split into block-range
// morsels executed by GOMAXPROCS workers and merged back in insertion
// order (see Options.Parallelism). The access-frequency
// feedback that query-based amnesia (§3.2) needs is accumulated per
// query and flushed as one synchronized batch, so it survives read
// concurrency without serialising scans.
//
// SQL serves the whole catalog through one Relation abstraction: flat
// tables and partitioned tables (CreatePartitionedTable) are both
// first-class entries, so DB.Query — and the HTTP /query endpoint built
// on it — routes to either kind transparently, fanning partitioned
// scans out per shard. The dialect covers projection, aggregates,
// WHERE/ORDER BY/LIMIT and two-table equi-joins with qualified columns
// (SELECT a.v, b.v FROM a JOIN b ON a.k = b.k), the join riding the
// same morsel-parallel hash join as DB.Join. Results are pipelined:
// DB.QueryStream's producers push per-morsel/per-shard batches into a
// bounded channel while they are still scanning, projection and the
// server's serialization consume concurrently (first chunk after the
// first morsel, backpressure from slow consumers, request-context
// cancellation tearing producers down mid-scan), and DB.Query is the
// Collect form.
//
// A minimal session:
//
//	db := amnesiadb.Open(amnesiadb.Options{Seed: 42})
//	t, _ := db.CreateTable("readings", "value")
//	_ = t.SetPolicy(amnesiadb.Policy{Strategy: "rot", Budget: 10000})
//	_ = t.InsertColumn("value", data)
//	res, _ := t.Select("value", amnesiadb.Range(100, 200))
package amnesiadb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"amnesiadb/internal/amnesia"
	"amnesiadb/internal/coldstore"
	"amnesiadb/internal/durability"
	"amnesiadb/internal/engine"
	"amnesiadb/internal/engine/governor"
	"amnesiadb/internal/engine/sched"
	"amnesiadb/internal/expr"
	"amnesiadb/internal/lockrank"
	"amnesiadb/internal/snapshot"
	"amnesiadb/internal/sql"
	"amnesiadb/internal/summary"
	"amnesiadb/internal/table"
	"amnesiadb/internal/wal"
	"amnesiadb/internal/xrand"
)

// Options configures a DB.
type Options struct {
	// Seed drives every stochastic amnesia decision; runs with equal
	// seeds and equal operation sequences are bit-reproducible. A zero
	// seed is valid and distinct from, say, 1.
	Seed uint64
	// Parallelism is the intra-query parallelism knob applied to every
	// table's executor: 0 (default) auto-parallelises large scans
	// across GOMAXPROCS morsel workers and keeps small scans serial;
	// 1 forces all scans serial; n > 1 forces n workers. Results are
	// identical at every setting — rows stay in insertion order and
	// aggregates are exact — only the core count changes. Forced counts
	// above the worker pool's width are clamped to it.
	Parallelism int
	// PoolSize selects the shared worker pool that executes every
	// query's morsels. 0 (default) uses the process-global pool of
	// GOMAXPROCS workers shared by every DB in the process, so total
	// engine concurrency stays bounded by the core count no matter how
	// many queries run at once; n > 0 gives this DB a dedicated pool of
	// n workers (Close releases it); n < 0 disables the pool entirely
	// and every query spawns its own goroutines, the pre-pool behavior.
	// Results are identical at every setting.
	PoolSize int
	// MaxQueries is the advisory admission limit the serving layer
	// reads via DB.MaxQueries: the number of queries allowed to execute
	// concurrently before new arrivals queue (and, past the queue
	// watermark, are shed with 429). Zero means unlimited; the library
	// itself never blocks on it.
	MaxQueries int
	// CacheEntries bounds the result cache: up to this many small,
	// fully-materialized results (at most one stream chunk of rows
	// each) are kept, keyed by normalized SQL text and the mutation
	// epochs of every relation the query read, so any insert, forget,
	// remember or vacuum invalidates exactly the answers it could have
	// changed. Zero disables result caching. Cached hits are served
	// without scanning — and therefore without the §3.2 access-
	// frequency touches a live scan feeds back; workloads tuning
	// "frequent"-style amnesia strategies should keep this off or
	// accept that only cache-missing queries train the counters. The
	// parsed-plan cache is always on and unaffected by this knob.
	CacheEntries int
	// Fsync selects the WAL commit discipline for durable databases
	// (OpenDir): "always" syncs every batch before acknowledging,
	// "group" (the default) coalesces ~2ms windows, "off" leaves
	// syncing to the OS. Ignored by Open.
	Fsync string
	// GroupCommitWindow overrides the "group" policy's coalescing
	// window; zero means 2ms. Ignored by Open.
	GroupCommitWindow time.Duration
	// SegmentBytes is the WAL segment size past which the background
	// snapshotter rotates and truncates; zero means 64 MiB. Ignored by
	// Open.
	SegmentBytes int64
	// MaxQueryBytes, when positive, is the per-query governed-memory
	// budget: pooled scan chunks in flight, join build tables and sort
	// runs all charge the query's quota, and a query that would exceed
	// the budget is cancelled alone with ErrResourceExhausted (HTTP 413
	// through the server) at its next morsel boundary. Zero (default)
	// disables per-query budgets; the governor still meters usage for
	// the process high-water mark and /healthz.
	MaxQueryBytes int64
	// MaxQueryDuration, when positive, is the per-query deadline:
	// queries exceeding it are cancelled with ErrQueryDeadline (HTTP
	// 408 through the server), enforced both through context
	// cancellation and at morsel boundaries so teardown is prompt.
	// Zero disables deadlines.
	MaxQueryDuration time.Duration
	// MemoryHighWater is the process-wide governed-bytes threshold past
	// which the governor sheds the most expensive in-flight query
	// instead of letting the process OOM. Zero (default) derives it
	// from GOMEMLIMIT (half the runtime limit, headroom for the
	// unmetered columns and caches; no GOMEMLIMIT means no shedding);
	// negative disables shedding outright.
	MemoryHighWater int64
	// StallDetach is the spill-on-stall threshold for streaming
	// value-only selects: a consumer idle past it has the pipeline's
	// remaining chunks drained to a governed heap buffer, so producers
	// exit and relation read locks release while the tail is served
	// from the buffer, byte-identically. Zero (default) uses
	// DefaultStallDetach; negative disables detaching.
	StallDetach time.Duration
}

// DefaultStallDetach is the stall threshold applied when
// Options.StallDetach is zero: long enough that a merely slow consumer
// (network hiccup, scheduling) never triggers a spill, short enough
// that a stalled streaming client cannot pin relation read locks — and
// with them every writer — for more than about a second.
const DefaultStallDetach = time.Second

// ErrResourceExhausted is reported by queries cancelled by resource
// governance: their Options.MaxQueryBytes budget ran out, or the
// process-wide high-water mark shed them. The serving layer maps it to
// HTTP 413.
var ErrResourceExhausted = governor.ErrResourceExhausted

// ErrQueryDeadline is reported by queries cancelled by the per-query
// deadline (Options.MaxQueryDuration). The serving layer maps it to
// HTTP 408.
var ErrQueryDeadline = governor.ErrDeadlineExceeded

// planCacheSize bounds the always-on parsed-plan LRU. Plans are tiny
// (an AST, no data), so a few hundred hot statements cost nothing and
// skip the lexer/parser on every serving-path query.
const planCacheSize = 256

// DB is a collection of tables sharing one deterministic random stream.
// DB and Table methods are safe for concurrent use. Reads and writes are
// split: inserts, policy changes and maintenance take a table's exclusive
// lock, while queries run under a shared read lock, so concurrent
// ScanActive readers proceed in parallel. Queries still update access
// frequencies — the strategy-relevant feedback of §3.2 — but those
// touches are accumulated per query by the vectorized engine and flushed
// in one internally synchronized batch, keeping the read path contention
// to one short critical section per query.
type DB struct {
	mu lockrank.Catalog
	// tables and parts are the two kinds of the relation catalog; they
	// share one namespace (CreateTable and CreatePartitionedTable check
	// both), and SQL queries route to either kind transparently.
	tables map[string]*Table
	parts  map[string]*PartitionedTable
	// par is Options.Parallelism, stamped onto every executor built for
	// this database (tables, SQL runs, partition shards).
	par int
	// pool is the shared morsel scheduler stamped onto every executor;
	// nil runs the legacy per-query-goroutine paths. ownPool marks a
	// dedicated (PoolSize > 0) pool that Close must shut down.
	pool    *sched.Pool
	ownPool bool
	// plans caches parsed statements by normalized SQL; results caches
	// small materialized answers by (normalized SQL, relation epochs).
	// results is nil when Options.CacheEntries is zero.
	plans      *sql.PlanCache
	results    *sql.ResultCache
	maxQueries int

	// gov is the process-side resource ledger; every non-cached query
	// runs under one of its quotas. maxQueryBytes/maxQueryDur/stall are
	// the resolved governance knobs from Options.
	gov           *governor.Governor
	maxQueryBytes int64
	maxQueryDur   time.Duration
	stallDetach   time.Duration

	// dur is the durability wiring attached by OpenDir; nil for
	// in-memory databases, which skip WAL logging entirely.
	dur *durableState
	// incarnation counts relation registrations; each relation's epoch
	// is advanced into the range incarnation<<32 at creation or
	// restore, so a same-named successor of a dropped table can never
	// reproduce a (query, epochs) result-cache signature.
	incarnation atomic.Uint64

	// srcMu guards src: strategy construction splits the shared seed
	// stream, and SetPolicy runs under its table's lock only, so two
	// tables installing policies concurrently must not race on the
	// source. srcMu is a leaf lock — never acquire others while holding
	// it.
	srcMu sync.Mutex
	src   *xrand.Source
}

// splitSrc derives a child random stream from the database seed. The
// draw order over the life of the process determines the stream, so
// single-threaded runs with equal seeds stay bit-reproducible.
func (db *DB) splitSrc() *xrand.Source {
	db.srcMu.Lock()
	defer db.srcMu.Unlock()
	return db.src.Split()
}

// Open creates an empty in-memory database.
func Open(opts Options) *DB {
	par := opts.Parallelism
	if par < 0 {
		par = 0
	}
	highWater := opts.MemoryHighWater
	if highWater == 0 {
		highWater = governor.HighWaterFromGOMEMLIMIT()
	}
	stall := opts.StallDetach
	if stall == 0 {
		stall = DefaultStallDetach
	}
	db := &DB{
		src:           xrand.New(opts.Seed),
		tables:        make(map[string]*Table),
		parts:         make(map[string]*PartitionedTable),
		par:           par,
		plans:         sql.NewPlanCache(planCacheSize),
		results:       sql.NewResultCache(opts.CacheEntries),
		maxQueries:    max(opts.MaxQueries, 0),
		gov:           governor.New(highWater),
		maxQueryBytes: max(opts.MaxQueryBytes, 0),
		maxQueryDur:   max(opts.MaxQueryDuration, 0),
		stallDetach:   max(stall, 0),
	}
	switch {
	case opts.PoolSize > 0:
		db.pool = sched.New(opts.PoolSize)
		db.ownPool = true
	case opts.PoolSize == 0:
		db.pool = sched.Default()
	}
	return db
}

// Close releases resources the database owns: the durability log (if
// OpenDir attached one) is flushed, fsynced and closed — deliberately
// without a final snapshot, so reopening replays the WAL tail exactly
// like crash recovery — and a dedicated worker pool
// (Options.PoolSize > 0) is shut down after in-flight steps drain. The
// process-global shared pool is never closed. Close is idempotent;
// queries must not be started after it.
func (db *DB) Close() {
	db.closeDurable()
	if db.ownPool {
		db.pool.Close()
	}
}

// PoolStats is a point-in-time snapshot of the worker pool serving this
// database's queries; the /healthz endpoint reports it.
type PoolStats struct {
	// Workers is the pool width — the hard bound on concurrently
	// executing morsel steps. Zero means no pool (PoolSize < 0).
	Workers int `json:"workers"`
	// Running counts steps executing right now.
	Running int `json:"running"`
	// Queries counts queries currently attached to the pool.
	Queries int `json:"queries"`
}

// PoolStats snapshots the worker pool; zeros when the DB runs without
// one.
func (db *DB) PoolStats() PoolStats {
	if db.pool == nil {
		return PoolStats{}
	}
	s := db.pool.Stats()
	return PoolStats{Workers: s.Workers, Running: s.Running, Queries: s.Queries}
}

// CacheStats reports plan- and result-cache occupancy and cumulative
// hit/miss counters (result-cache stale evictions count as misses).
type CacheStats struct {
	PlanEntries   int    `json:"plan_entries"`
	PlanHits      uint64 `json:"plan_hits"`
	PlanMisses    uint64 `json:"plan_misses"`
	ResultEntries int    `json:"result_entries"`
	ResultHits    uint64 `json:"result_hits"`
	ResultMisses  uint64 `json:"result_misses"`
}

// CacheStats snapshots both query caches.
func (db *DB) CacheStats() CacheStats {
	ph, pm := db.plans.Counters()
	rh, rm := db.results.Counters()
	return CacheStats{
		PlanEntries: db.plans.Len(), PlanHits: ph, PlanMisses: pm,
		ResultEntries: db.results.Len(), ResultHits: rh, ResultMisses: rm,
	}
}

// MaxQueries returns Options.MaxQueries: the advisory concurrent-query
// admission limit the serving layer enforces. Zero means unlimited.
func (db *DB) MaxQueries() int { return db.maxQueries }

// GovernorStats snapshots the resource governor's live ledger: queries
// with registered quotas, pooled bytes currently charged, the process
// peak, the configured high-water mark (0 when pressure shedding is
// off) and the cumulative count of queries shed under pressure.
func (db *DB) GovernorStats() governor.Stats { return db.gov.Stats() }

// CreateTable adds a table with the given columns. Every column stores
// int64 values. It fails if the name is taken.
func (db *DB) CreateTable(name string, columns ...string) (*Table, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	if db.taken(name) {
		db.mu.Unlock()
		return nil, fmt.Errorf("amnesiadb: table %q already exists", name)
	}
	if len(columns) == 0 {
		db.mu.Unlock()
		return nil, fmt.Errorf("amnesiadb: table %q needs at least one column", name)
	}
	tbl := table.New(name, columns...)
	ex := engine.New(tbl)
	ex.SetParallelism(db.par)
	ex.SetScheduler(db.pool)
	t := &Table{
		db:  db,
		tbl: tbl,
		ex:  ex,
	}
	tbl.AdvanceEpoch(db.nextIncarnation())
	db.tables[name] = t
	p := db.logRecord(wal.RecordCreate(name, columns))
	db.mu.Unlock()
	if err := db.commitWait(p); err != nil {
		return nil, err
	}
	return t, nil
}

// taken reports whether name is claimed by either catalog kind; callers
// hold db.mu.
func (db *DB) taken(name string) bool {
	if _, dup := db.tables[name]; dup {
		return true
	}
	_, dup := db.parts[name]
	return dup
}

// Table returns the named flat table, or false. Partitioned tables live
// beside flat ones in the catalog; fetch them with Partitioned.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Partitioned returns the named partitioned table, or false.
func (db *DB) Partitioned(name string) (*PartitionedTable, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, ok := db.parts[name]
	return p, ok
}

// TableNames lists every catalog entry — flat and partitioned — in
// lexical order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables)+len(db.parts))
	for n := range db.tables {
		out = append(out, n)
	}
	for n := range db.parts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RelationInfo describes one catalog entry for monitoring surfaces (the
// HTTP /tables endpoint serves it directly).
type RelationInfo struct {
	Name string `json:"name"`
	// Kind is "table" or "partitioned".
	Kind string `json:"kind"`
	// Shards is the partition count; zero for flat tables.
	Shards int `json:"shards,omitempty"`
}

// Relations lists the catalog — both kinds — in lexical name order.
func (db *DB) Relations() []RelationInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]RelationInfo, 0, len(db.tables)+len(db.parts))
	for n := range db.tables {
		out = append(out, RelationInfo{Name: n, Kind: "table"})
	}
	for n, p := range db.parts {
		out = append(out, RelationInfo{Name: n, Kind: "partitioned", Shards: len(p.set.Partitions())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Strategies lists the amnesia strategy names accepted in a Policy.
func Strategies() []string { return amnesia.Names() }

// QueryResult is the tabular output of DB.Query.
type QueryResult struct {
	// Columns are the output headers.
	Columns []string
	// Rows holds one value slice per row, aligned with Columns.
	Rows [][]float64
	// Ints flags columns whose values are exact integers (everything
	// except AVG).
	Ints []bool
}

// ErrUnknownTable is wrapped by Query errors naming a table the catalog
// does not hold, so callers (notably the HTTP server) can map it to a
// not-found rather than a bad-request condition.
var ErrUnknownTable = errors.New("unknown table")

// Query parses and executes one SQL SELECT over the database's catalog —
// flat and partitioned tables alike — seeing active tuples only. The
// supported dialect is the paper's §2.2 subspace: projection or a single
// aggregate (COUNT/SUM/AVG/MIN/MAX), WHERE clauses comparing one integer
// attribute, AND/OR/NOT, ORDER BY, LIMIT, and two-table equi-joins
// (SELECT a.v, b.v FROM a JOIN b ON a.k = b.k) riding the
// morsel-parallel hash join. Errors wrap ErrUnknownTable or
// sql.ErrInvalid so callers can tell a missing table from malformed SQL.
// Query materializes the full result; QueryStream is the chunked form
// the HTTP server serializes incrementally.
func (db *DB) Query(q string) (*QueryResult, error) {
	qs, err := db.QueryStream(q)
	if err != nil {
		return nil, err
	}
	defer qs.Close()
	// Drain through Next rather than the stream's Collect so the
	// materialized path feeds (and is fed by) the result cache exactly
	// like the streaming one.
	var rows [][]float64
	for {
		chunk, err := qs.Next()
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			break
		}
		rows = append(rows, chunk...)
	}
	return &QueryResult{Columns: qs.Columns, Rows: rows, Ints: qs.Ints}, nil
}

// QueryStream is a query result delivered as a pipeline: the engine's
// morsel workers (or the partition layer's shard fan-out) push batches
// into a bounded channel while they are still scanning, and Next
// projects whatever has arrived — the first chunk is ready after the
// first morsel, not the full scan. Streams whose later chunks never
// read table storage again — value-only projections, including every
// partitioned-table select, and aggregates — release their relations'
// read locks as soon as the scan side completes, even while the
// consumer is still draining. Note the pipeline trade: a consumer
// slower than the scan delays that completion through backpressure
// (that is what bounds memory), so with a large backlog the lock hold
// tracks the slower of scan and consumer — Close, context
// cancellation, or the server's -write-timeout bound the worst case,
// and small backlogs (selective queries) fit the pipeline's buffers
// and always release at scan speed.
// Streams that project lazily from table columns (multi-column selects,
// joins) hold their read locks until Close, which Next calls
// automatically once the stream drains or fails; callers abandoning a
// stream early must Close it themselves — Close also cancels any
// still-running producers. Single-consumer, not safe for concurrent
// use.
type QueryStream struct {
	// Columns are the output headers; Ints flags exact-integer columns.
	Columns []string
	Ints    []bool

	st *sql.ResultStream

	mu      sync.Mutex
	release func()
	// finish runs once when the stream ends (Close, which Next calls on
	// drain or error): it unregisters the query's resource quota,
	// sweeping any residual charge from an abandoned stream out of the
	// process ledger.
	finish func()

	// cached marks a stream replaying a result-cache hit; no relation
	// storage is read and no locks are held.
	cached bool
	// The recorder tees drained rows into the result cache: rows
	// accumulate (as copies — consumers may scribble on theirs) until
	// the stream drains cleanly, then commit under the epoch signature
	// captured at query start. An error, or growth past the cacheable
	// bound, drops the recording. Single-consumer like the stream
	// itself, so these fields need no lock.
	cache     *sql.ResultCache
	cacheKey  string
	cacheSig  string
	recording bool
	recRows   [][]float64
}

// Cached reports whether this stream is served from the result cache
// rather than a live scan. The HTTP layer surfaces it as a response
// header.
func (qs *QueryStream) Cached() bool { return qs.cached }

// Next returns the next chunk of rows, nil once the stream is drained.
func (qs *QueryStream) Next() ([][]float64, error) {
	rows, err := qs.st.Next()
	if qs.recording {
		switch {
		case err != nil:
			qs.recording, qs.recRows = false, nil
		case rows == nil:
			qs.cache.Put(qs.cacheKey, qs.cacheSig, &sql.CachedResult{
				Columns: qs.Columns, Ints: qs.Ints, Rows: qs.recRows,
			})
			qs.recording, qs.recRows = false, nil
		case len(qs.recRows)+len(rows) > sql.MaxCachedResultRows:
			qs.recording, qs.recRows = false, nil
		default:
			for _, r := range rows {
				qs.recRows = append(qs.recRows, append([]float64(nil), r...))
			}
		}
	}
	if err != nil || rows == nil {
		qs.Close()
	}
	return rows, err
}

// Close cancels any still-running producers and releases the relation
// locks the stream holds (waiting, when necessary, for in-flight morsel
// workers to exit first — storage must not be read after the locks go).
// It is idempotent and safe to call concurrently with the scan-side
// release.
func (qs *QueryStream) Close() {
	qs.st.Close()
	if sd := qs.st.ScanDone(); sd != nil {
		<-sd
	}
	qs.releaseLocks()
	qs.finishQuota()
}

// finishQuota runs the stream-end hook exactly once; it must not run
// before the producers have exited (pooled chunks still in flight carry
// charges the quota's removal would otherwise sweep early), so only
// Close — which waits on ScanDone — calls it.
func (qs *QueryStream) finishQuota() {
	qs.mu.Lock()
	finish := qs.finish
	qs.finish = nil
	qs.mu.Unlock()
	if finish != nil {
		finish()
	}
}

// releaseLocks drops the stream's read locks exactly once. Both Close
// and the scan-completion watcher funnel through here.
func (qs *QueryStream) releaseLocks() {
	qs.mu.Lock()
	release := qs.release
	qs.release = nil
	qs.mu.Unlock()
	if release != nil {
		release()
	}
}

// QueryStream parses, validates and starts one SQL SELECT, returning the
// chunked result stream; see QueryStreamCtx.
func (db *DB) QueryStream(q string) (*QueryStream, error) {
	//lint:ignore ctxflow QueryStream is the public ctx-less compat entry; request paths use QueryStreamCtx.
	return db.QueryStreamCtx(context.Background(), q)
}

// QueryStreamCtx parses, validates and starts one SQL SELECT, returning
// the pipelined result stream. Every relation the query references is
// read-locked — in sorted name order, the same order Join takes its
// pair, so the two paths cannot deadlock around a pending writer — and
// stays locked until the stream no longer reads storage (scan-side
// completion for value-only streams, Close otherwise), so concurrent
// queries stream in parallel while inserts wait only as long as the
// scan itself. Cancelling ctx tears down the query's morsel workers and
// shard fan-outs mid-scan: a disconnected HTTP client stops consuming
// cores within one morsel.
func (db *DB) QueryStreamCtx(ctx context.Context, q string) (*QueryStream, error) {
	// Normalize once and key both caches on the canonical text; the
	// grammar has no literals where whitespace matters, so the
	// normalized form parses identically.
	norm := sql.NormalizeSQL(q)
	pq, err := db.plans.Parse(norm)
	if err != nil {
		return nil, err
	}
	names := pq.Tables()
	sort.Strings(names)
	// Resolve every relation under one catalog read-lock, then take the
	// relation locks in name order with the catalog lock already
	// released. Re-entering db.mu while holding a relation lock would
	// invert the hierarchy (docs/LOCKING.md): lockCatalog holds db.mu
	// exclusively while it waits for each relation in the same name
	// order, so a query holding table A's read lock and waiting on
	// db.mu deadlocks against a snapshot holding db.mu and waiting on A.
	type resolvedRel struct {
		t *Table
		p *PartitionedTable
	}
	resolved := make([]resolvedRel, len(names))
	db.mu.RLock()
	for i, n := range names {
		t, okT := db.tables[n]
		p, okP := db.parts[n]
		switch {
		case okT:
			resolved[i].t = t
		case okP:
			resolved[i].p = p
		default:
			db.mu.RUnlock()
			return nil, fmt.Errorf("amnesiadb: %w %q", ErrUnknownTable, n)
		}
	}
	db.mu.RUnlock()
	rels := make(map[string]sql.Relation, len(names))
	var unlocks []func()
	release := func() {
		for _, u := range unlocks {
			u()
		}
	}
	for i, n := range names {
		if t := resolved[i].t; t != nil {
			t.mu.RLock()
			unlocks = append(unlocks, t.mu.RUnlock)
			tr := sql.NewTableRelation(t.tbl)
			tr.SetScheduler(db.pool)
			rels[n] = tr
		} else {
			p := resolved[i].p
			p.mu.RLock()
			unlocks = append(unlocks, p.mu.RUnlock)
			rels[n] = sql.NewPartitionRelation(p.set)
		}
	}
	// The epoch signature is read under the relations' read locks, so
	// it identifies exactly the data this query will scan: a cached
	// entry at the same signature is byte-identical to what a live run
	// would return, and any mutation since makes the lookup miss (and
	// evict the stale entry).
	var sig string
	if db.results != nil {
		var sb strings.Builder
		for _, n := range names {
			fmt.Fprintf(&sb, "%s:%d;", n, rels[n].Epoch())
		}
		sig = sb.String()
		if res, ok := db.results.Get(norm, sig); ok {
			release()
			st := sql.NewCachedStream(res)
			return &QueryStream{Columns: st.Columns, Ints: st.Ints, st: st, cached: true}, nil
		}
	}
	// Each live query gets its own resource quota: pooled batches, join
	// build tables and sort runs charge it, the budget (if any) bounds
	// it, and the process-wide governor can kill it under memory
	// pressure. The quota is removed — sweeping any residual charge —
	// when the stream ends.
	quota := db.gov.NewQuota(db.maxQueryBytes)
	st, err := sql.ExecStream(sql.CatalogFunc(func(n string) (sql.Relation, error) {
		r, ok := rels[n]
		if !ok {
			return nil, fmt.Errorf("amnesiadb: %w %q", ErrUnknownTable, n)
		}
		return r, nil
	}), pq, sql.Opts{
		Parallelism: db.par,
		Ctx:         ctx,
		Sched:       db.pool,
		Quota:       quota,
		MaxDuration: db.maxQueryDur,
		StallDetach: db.stallDetach,
	})
	if err != nil {
		db.gov.Remove(quota)
		release()
		return nil, err
	}
	qs := &QueryStream{Columns: st.Columns, Ints: st.Ints, st: st, release: release,
		finish: func() { db.gov.Remove(quota) }}
	if db.results != nil {
		qs.cache, qs.cacheKey, qs.cacheSig, qs.recording = db.results, norm, sig, true
	}
	switch {
	case st.Detached:
		// The stream owns every buffer its chunks will be built from;
		// nothing reads the relations again, so the locks can go now.
		qs.releaseLocks()
	case st.EarlyRelease() && st.ScanDone() != nil:
		// Value-only pipeline: producers are still scanning, but the
		// moment they finish (including after a cancellation) the
		// stream only replays buffers it owns — release the locks right
		// then, not at consumer completion. (Backpressure means a
		// consumer slower than the scan still delays scan completion
		// for backlogs beyond the pipeline's buffers; see the
		// QueryStream doc.) The watcher always fires: ScanDone closes
		// on every pipeline exit path.
		sd := st.ScanDone()
		go func() {
			<-sd
			qs.releaseLocks()
		}()
	}
	return qs, nil
}

// Policy binds an amnesia strategy and a storage budget to a table.
type Policy struct {
	// Strategy names the forgetting algorithm; see Strategies.
	Strategy string
	// Budget is the maximum number of active tuples. Zero disables
	// amnesia (the table never forgets).
	Budget int
	// Column is the attribute consulted by value-aware strategies
	// (pairwise, distaligned). Empty selects the table's first column.
	Column string
	// MaxAgeBatches, when positive, is a hard retention window: every
	// tuple older than this many insert batches is forgotten on the next
	// enforcement, regardless of budget headroom — the paper's
	// "legally defined time frame". Zero disables age-based forgetting.
	MaxAgeBatches int
}

// Table is a columnar table with optional amnesia. Obtain via
// DB.CreateTable. Queries take mu as readers; structural mutation and
// anything that reads access frequencies (policy enforcement, snapshots)
// takes it exclusively.
type Table struct {
	mu     lockrank.Relation
	db     *DB
	tbl    *table.Table
	ex     *engine.Exec
	policy Policy
	strat  amnesia.Strategy
	cold   *coldstore.Store
	book   *summary.Book
	// dropped (guarded by mu) marks a handle whose relation left the
	// catalog: DropTable sets it under the exclusive lock before
	// logging the drop record, so mutations through a stale handle fail
	// instead of appending WAL records after their relation's drop.
	dropped bool
}

// liveLocked fails mutation through a handle that outlived its
// relation's drop; callers hold t.mu exclusively. The check must run
// before any WAL record is enqueued, or replay would encounter a
// mutation on a dropped relation and reject the log.
func (t *Table) liveLocked() error {
	if t.dropped {
		return fmt.Errorf("amnesiadb: %w %q (dropped)", ErrUnknownTable, t.Name())
	}
	return nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.tbl.Name() }

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string { return t.tbl.Columns() }

// SetPolicy installs (or with a zero Policy removes) the amnesia policy.
func (t *Table) SetPolicy(p Policy) error {
	if err := t.db.writable(); err != nil {
		return err
	}
	t.mu.Lock()
	if err := t.liveLocked(); err != nil {
		t.mu.Unlock()
		return err
	}
	pend, err := t.setPolicyLocked(p)
	t.mu.Unlock()
	if err != nil {
		return err
	}
	return t.db.commitWait(pend)
}

func (t *Table) setPolicyLocked(p Policy) (*durability.Pending, error) {
	if p.Budget < 0 {
		return nil, fmt.Errorf("amnesiadb: negative budget %d", p.Budget)
	}
	if p.MaxAgeBatches < 0 {
		return nil, fmt.Errorf("amnesiadb: negative MaxAgeBatches %d", p.MaxAgeBatches)
	}
	switch {
	case p.Budget == 0 && p.MaxAgeBatches == 0:
		t.policy, t.strat = Policy{}, nil
	case p.Budget == 0:
		// Pure retention-window policy: no budget strategy needed.
		t.policy, t.strat = p, nil
	default:
		col := p.Column
		if col == "" {
			col = t.tbl.Columns()[0]
		}
		strat, err := amnesia.New(p.Strategy, col, t.db.splitSrc())
		if err != nil {
			return nil, err
		}
		t.policy, t.strat = p, strat
	}
	return t.db.logRecord(wal.RecordPolicy(t.Name(), wal.PolicySpec{
		Strategy:      t.policy.Strategy,
		Budget:        t.policy.Budget,
		Column:        t.policy.Column,
		MaxAgeBatches: t.policy.MaxAgeBatches,
	})), nil
}

// Policy returns the active policy; Budget 0 means amnesia is off.
func (t *Table) Policy() Policy {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.policy
}

// Insert appends one batch of rows given as column-name -> values (all
// slices the same length), then enforces the amnesia budget. On a
// durable database Insert returns only after the WAL records — the
// batch plus whatever positions enforcement forgot — are fsynced per
// the commit policy; a persistence failure degrades the database to
// read-only and surfaces ErrReadOnly.
func (t *Table) Insert(cols map[string][]int64) error {
	if err := t.db.writable(); err != nil {
		return err
	}
	t.mu.Lock()
	if err := t.liveLocked(); err != nil {
		t.mu.Unlock()
		return err
	}
	pends, err := t.insertLocked(cols)
	t.mu.Unlock()
	if err != nil {
		return err
	}
	return t.db.commitWait(pends...)
}

// insertLocked applies the batch and, on durable databases, captures
// the mutation outcome into WAL records: the decay strategy picks
// forgets stochastically, so the positions are recovered by diffing
// the active bitmap around enforcement — the log records what was
// forgotten, never why.
func (t *Table) insertLocked(cols map[string][]int64) ([]*durability.Pending, error) {
	logging := t.db.dur != nil
	var words []uint64
	var oldLen int
	if logging {
		words, oldLen = t.tbl.ActiveSnapshot(nil)
	}
	if _, err := t.tbl.AppendBatch(cols); err != nil {
		return nil, err
	}
	enfErr := t.enforceBudgetLocked()
	if !logging {
		return nil, enfErr
	}
	rec, err := wal.RecordInsert(t.Name(), t.tbl.Columns(), cols)
	if err != nil {
		return nil, err
	}
	pends := []*durability.Pending{t.db.logRecord(rec)}
	if fg := t.tbl.ForgottenSince(words, oldLen); len(fg) > 0 {
		pends = append(pends, t.db.logRecord(wal.RecordForget(t.Name(), fg)))
	}
	return pends, enfErr
}

// InsertColumn appends a batch to a table, providing values for the named
// column only; valid only for single-column tables.
func (t *Table) InsertColumn(col string, vals []int64) error {
	return t.Insert(map[string][]int64{col: vals})
}

// EnforceBudget applies the amnesia policy immediately, forgetting tuples
// until the active count is within budget. It is called automatically by
// Insert; manual calls are useful after policy changes.
func (t *Table) EnforceBudget() error {
	if err := t.db.writable(); err != nil {
		return err
	}
	t.mu.Lock()
	if err := t.liveLocked(); err != nil {
		t.mu.Unlock()
		return err
	}
	var pend *durability.Pending
	err := func() error {
		logging := t.db.dur != nil
		var words []uint64
		var oldLen int
		if logging {
			words, oldLen = t.tbl.ActiveSnapshot(nil)
		}
		eerr := t.enforceBudgetLocked()
		if logging {
			if fg := t.tbl.ForgottenSince(words, oldLen); len(fg) > 0 {
				pend = t.db.logRecord(wal.RecordForget(t.Name(), fg))
			}
		}
		return eerr
	}()
	t.mu.Unlock()
	if err != nil {
		return err
	}
	return t.db.commitWait(pend)
}

func (t *Table) enforceBudgetLocked() error {
	if t.policy.MaxAgeBatches > 0 {
		amnesia.ForgetOlderThan(t.tbl, t.policy.MaxAgeBatches)
	}
	if t.strat == nil {
		return nil
	}
	over := t.tbl.ActiveCount() - t.policy.Budget
	if over <= 0 {
		return nil
	}
	t.strat.Forget(t.tbl, over)
	if got := t.tbl.ActiveCount(); got != t.policy.Budget {
		return fmt.Errorf("amnesiadb: budget enforcement left %d active, want %d", got, t.policy.Budget)
	}
	return nil
}

// Pred is an opaque query predicate over one column's values.
type Pred struct{ e expr.Expr }

// Range returns the predicate lo <= value < hi.
func Range(lo, hi int64) Pred {
	if lo > hi {
		lo, hi = hi, lo
	}
	return Pred{e: expr.NewRange(lo, hi)}
}

// All returns the always-true predicate (full column scan).
func All() Pred { return Pred{e: expr.True{}} }

// Eq returns the predicate value == v.
func Eq(v int64) Pred { return Pred{e: expr.Cmp{Op: expr.EQ, Val: v}} }

// Lt returns the predicate value < v.
func Lt(v int64) Pred { return Pred{e: expr.Cmp{Op: expr.LT, Val: v}} }

// Ge returns the predicate value >= v.
func Ge(v int64) Pred { return Pred{e: expr.Cmp{Op: expr.GE, Val: v}} }

// And combines two predicates conjunctively.
func And(a, b Pred) Pred { return Pred{e: expr.And{L: a.e, R: b.e}} }

// String renders the predicate in SQL-ish syntax.
func (p Pred) String() string {
	if p.e == nil {
		return "TRUE"
	}
	return p.e.String()
}

func (p Pred) expr() expr.Expr {
	if p.e == nil {
		return expr.True{}
	}
	return p.e
}

// Result is the output of Select.
type Result struct {
	// Rows are tuple positions in insertion order.
	Rows []int32
	// Values are the matching attribute values, aligned with Rows.
	Values []int64
}

// Count returns the number of matching tuples.
func (r *Result) Count() int { return len(r.Rows) }

// Select returns the active tuples of column col matching p. Access
// frequencies are updated, feeding rot-style policies.
func (t *Table) Select(col string, p Pred) (*Result, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	res, err := t.ex.Select(col, p.expr(), engine.ScanActive)
	if err != nil {
		return nil, err
	}
	return &Result{Rows: res.Rows, Values: res.Values}, nil
}

// SelectWithForgotten performs the paper's explicit "complete scan": it
// returns matches among all stored tuples, including forgotten ones.
func (t *Table) SelectWithForgotten(col string, p Pred) (*Result, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	res, err := t.ex.Select(col, p.expr(), engine.ScanAll)
	if err != nil {
		return nil, err
	}
	return &Result{Rows: res.Rows, Values: res.Values}, nil
}

// Agg holds aggregate query output.
type Agg struct {
	Count int
	Sum   int64
	Min   int64
	Max   int64
	Avg   float64
}

// ErrNoRows is returned by aggregates whose qualifying set is empty.
var ErrNoRows = engine.ErrNoRows

// Aggregate computes COUNT/SUM/AVG/MIN/MAX of col over active tuples
// matching p. It returns ErrNoRows when nothing matches.
func (t *Table) Aggregate(col string, p Pred) (Agg, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	a, err := t.ex.Aggregate(col, p.expr(), engine.ScanActive)
	if err != nil {
		return Agg{}, err
	}
	return Agg{Count: a.Rows, Sum: a.Sum, Min: a.Min, Max: a.Max, Avg: a.Avg}, nil
}

// Precision runs p in both scan modes and reports the §2.3 metrics:
// rf tuples returned, mf tuples missed to amnesia, pf = rf/(rf+mf).
func (t *Table) Precision(col string, p Pred) (rf, mf int, pf float64, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ex.Precision(col, p.expr())
}

// Stats summarises table state.
type Stats struct {
	Tuples    int // stored tuples, active + forgotten
	Active    int
	Forgotten int
	Batches   int // insert batches so far
	ColdTier  int // tuples resident in cold storage
	Segments  int // summary segments absorbed
}

// Stats returns current counters.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := t.tbl.Stats()
	out := Stats{Tuples: s.Tuples, Active: s.Active, Forgotten: s.Forgotten, Batches: s.Batches}
	if t.cold != nil {
		out.ColdTier = t.cold.Tuples()
	}
	if t.book != nil {
		out.Segments = len(t.book.Segments())
	}
	return out
}

// ActivePerBatch returns, per insert batch, how many of its tuples are
// still active and how many it contained — the amnesia-map data of the
// paper's Figures 1 and 2.
func (t *Table) ActivePerBatch() (active, total []int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tbl.ActivePerBatch()
}

// Vacuum physically removes forgotten tuples (that have not been demoted)
// and reclaims their storage. Summary segments survive; cold-tier
// snapshots survive; positions are renumbered. On a durable database the
// renumbering is itself a logged mutation, so Vacuum returns an error
// when the database is read-only or the WAL append fails.
func (t *Table) Vacuum() error {
	if err := t.db.writable(); err != nil {
		return err
	}
	t.mu.Lock()
	if err := t.liveLocked(); err != nil {
		t.mu.Unlock()
		return err
	}
	t.tbl.Vacuum()
	if t.book != nil {
		t.book.Rebase()
	}
	pend := t.db.logRecord(wal.RecordVacuum(t.Name()))
	t.mu.Unlock()
	return t.db.commitWait(pend)
}

// DemoteForgotten moves every forgotten tuple into the simulated cold
// tier (AWS-Glacier-like cost model) and returns how many moved. A
// dropped handle reports ErrUnknownTable instead of demoting into a
// cold tier nothing can recover from.
func (t *Table) DemoteForgotten() (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.liveLocked(); err != nil {
		return 0, err
	}
	if t.cold == nil {
		t.cold = coldstore.New(t.tbl, coldstore.Glacier2016)
	}
	return t.cold.Demote(), nil
}

// RecoverRange explicitly recovers cold tuples of column col with values
// in [lo, hi), reactivating them. It returns the recovered positions and
// the simulated retrieval latency.
func (t *Table) RecoverRange(col string, lo, hi int64) ([]int, time.Duration, error) {
	if err := t.db.writable(); err != nil {
		return nil, 0, err
	}
	t.mu.Lock()
	if err := t.liveLocked(); err != nil {
		t.mu.Unlock()
		return nil, 0, err
	}
	var pend *durability.Pending
	hits, lat, err := func() ([]int, time.Duration, error) {
		if t.cold == nil {
			return nil, 0, fmt.Errorf("amnesiadb: table %q has no cold tier", t.Name())
		}
		hits, lat, err := t.cold.RecoverRange(col, lo, hi)
		if err == nil && len(hits) > 0 {
			pend = t.db.logRecord(wal.RecordRemember(t.Name(), hits))
		}
		return hits, lat, err
	}()
	t.mu.Unlock()
	if err != nil {
		return nil, 0, err
	}
	if err := t.db.commitWait(pend); err != nil {
		return nil, 0, err
	}
	return hits, lat, nil
}

// Bill reports accumulated cold-tier costs under the Glacier model.
type Bill struct {
	StoragePerYear float64 // USD per year at rest
	RetrievalTotal float64 // USD spent on recoveries
	Retrievals     int
}

// ColdBill returns the cold tier's cost summary; zero when no tuples were
// ever demoted.
func (t *Table) ColdBill() Bill {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.cold == nil {
		return Bill{}
	}
	b := t.cold.Bill()
	return Bill{StoragePerYear: b.StoragePerYear, RetrievalTotal: b.RetrievalTotal, Retrievals: b.Retrievals}
}

// summaryEps is the quantile-sketch error bound summaries carry: ranks
// answered within 1% of the absorbed population.
const summaryEps = 0.01

// Summarize collapses the current forgotten tuples of column col into one
// aggregate segment (count/sum/min/max plus a quantile sketch) and
// returns how many tuples were absorbed. Absorbed mass keeps contributing
// to ApproxAvg and ForgottenQuantile even after a Vacuum.
func (t *Table) Summarize(col string) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.liveLocked(); err != nil {
		return 0, err
	}
	if t.book == nil {
		b, err := summary.NewBookWithQuantiles(t.tbl, col, summaryEps)
		if err != nil {
			return 0, err
		}
		t.book = b
	}
	return t.book.Absorb(), nil
}

// ForgottenQuantile returns an approximate phi-quantile (phi in [0, 1])
// of every value ever absorbed by Summarize — e.g. the median of the
// deleted data. It errors before the first Summarize call.
func (t *Table) ForgottenQuantile(phi float64) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.book == nil {
		return 0, fmt.Errorf("amnesiadb: table %q has no summaries yet", t.Name())
	}
	return t.book.ForgottenQuantile(phi)
}

// GroupRow is one bucket of a grouped aggregation.
type GroupRow struct {
	// Key is the group key: the attribute value (width 0) or the
	// bucket's lower bound.
	Key   int64
	Count int
	Sum   int64
	Min   int64
	Max   int64
	Avg   float64
}

// GroupBy aggregates col over active tuples matching p, grouped by exact
// value when width is 0 or into equi-width buckets otherwise. Groups come
// back in ascending key order; groups whose members were all forgotten
// are absent entirely.
func (t *Table) GroupBy(col string, p Pred, width int64) ([]GroupRow, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var groups []engine.Group
	var err error
	if width == 0 {
		groups, err = t.ex.GroupByValue(col, p.expr(), engine.ScanActive)
	} else {
		groups, err = t.ex.GroupByBucket(col, p.expr(), engine.ScanActive, width)
	}
	if err != nil {
		return nil, err
	}
	out := make([]GroupRow, len(groups))
	for i, g := range groups {
		out[i] = GroupRow{Key: g.Key, Count: g.Rows, Sum: g.Sum, Min: g.Min, Max: g.Max, Avg: g.Avg}
	}
	return out, nil
}

// JoinRow is one equi-join match between two tables.
type JoinRow struct {
	// LeftRow and RightRow are tuple positions in the two tables.
	LeftRow, RightRow int32
	// Key is the join key value.
	Key int64
}

// Join computes the equi-join left.leftCol = right.rightCol over active
// tuples, optionally restricted by a predicate on the join key. Both
// tables must belong to this database. The join runs at the database's
// Parallelism setting: collection, hash build and probe all
// morsel-parallel for large inputs, serial below the threshold.
func (db *DB) Join(left *Table, leftCol string, right *Table, rightCol string, p Pred) ([]JoinRow, error) {
	lockPair(left, right)
	defer unlockPair(left, right)
	//lint:ignore ctxflow Join is a public ctx-less facade method; SQL joins thread the request context via Opts.Ctx.
	res, err := engine.HashJoinSched(context.Background(), db.pool, left.tbl, leftCol, right.tbl, rightCol, p.expr(), engine.ScanActive, db.par)
	if err != nil {
		return nil, err
	}
	out := make([]JoinRow, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = JoinRow{LeftRow: r.Left, RightRow: r.Right, Key: r.Key}
	}
	return out, nil
}

// JoinPrecision reports the §2.3 metrics lifted to join pairs: pairs
// returned over active tuples, pairs missed because either side forgot a
// participant, and their ratio. Join precision compounds — it is roughly
// the product of the two sides' tuple precision.
func (db *DB) JoinPrecision(left *Table, leftCol string, right *Table, rightCol string, p Pred) (rf, mf int, pf float64, err error) {
	lockPair(left, right)
	defer unlockPair(left, right)
	//lint:ignore ctxflow JoinPrecision is a public ctx-less facade method; precision runs are operator-driven, not request-driven.
	return engine.JoinPrecisionSched(context.Background(), db.pool, left.tbl, leftCol, right.tbl, rightCol, p.expr(), db.par)
}

// lockPair acquires both tables' read locks in a stable order. Joins are
// read-only (their executors are silent), so shared locks suffice and
// concurrent joins and selects on the same tables proceed in parallel.
// Self-joins take the lock once.
func lockPair(a, b *Table) {
	if a == b {
		a.mu.RLock()
		return
	}
	if a.tbl.Name() > b.tbl.Name() {
		a, b = b, a
	}
	a.mu.RLock()
	b.mu.RLock()
}

func unlockPair(a, b *Table) {
	if a == b {
		a.mu.RUnlock()
		return
	}
	a.mu.RUnlock()
	b.mu.RUnlock()
}

// Save serialises the table's full state — values, active bitmap, insert
// batches, access frequencies — to w in a compact binary format. The
// amnesia policy itself is configuration, not state, and is not saved.
func (t *Table) Save(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.liveLocked(); err != nil {
		return err
	}
	return snapshot.Write(w, t.tbl)
}

// LoadTable restores a table previously written by Save into the
// database under its saved name. The table arrives without a policy;
// call SetPolicy to resume forgetting. The restored table gets a fresh
// epoch incarnation so cached results from an earlier same-named table
// (saved snapshots start at epoch 0, like freshly dropped-and-recreated
// tables) can never be served against the new contents. On a durable
// database the load is persisted by cutting a catalog snapshot, since a
// table snapshot's batch and access state cannot be expressed as
// insert records.
func (db *DB) LoadTable(r io.Reader) (*Table, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	tbl, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	if db.taken(tbl.Name()) {
		db.mu.Unlock()
		return nil, fmt.Errorf("amnesiadb: table %q already exists", tbl.Name())
	}
	ex := engine.New(tbl)
	ex.SetParallelism(db.par)
	ex.SetScheduler(db.pool)
	tbl.AdvanceEpoch(db.nextIncarnation())
	t := &Table{db: db, tbl: tbl, ex: ex}
	db.tables[tbl.Name()] = t
	db.mu.Unlock()
	if db.dur != nil {
		if err := db.Snapshot(); err != nil {
			// Half-done load: the table is registered in memory but its
			// state never reached disk. Deregister it so memory and
			// disk stay in agreement — a caller that retries hits the
			// normal "create or load again" path, not a phantom table.
			db.mu.Lock()
			t.mu.Lock()
			t.dropped = true
			delete(db.tables, tbl.Name())
			t.mu.Unlock()
			db.mu.Unlock()
			return nil, err
		}
	}
	return t, nil
}

// ApproxAvg estimates AVG(col) over active tuples plus all summarised
// segments — exact for the union, because sums are lossless.
func (t *Table) ApproxAvg(col string) (float64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.book == nil {
		a, err := t.ex.Aggregate(col, expr.True{}, engine.ScanActive)
		if err != nil {
			return 0, err
		}
		return a.Avg, nil
	}
	est, err := t.book.FullAvg()
	if err != nil {
		return 0, err
	}
	return est.Avg, nil
}
